"""Command-line translation validator for the rewrite pipeline.

Runs every shipped workload query (the empdept paper query plus
experiments A-H) through the full EMST rewrite under
``ResiliencePolicy(paranoid=True)`` with chase-based equivalence
checking enabled, and reports the per-firing verdicts::

    python -m repro.analysis.translation_validate
    python -m repro.analysis.translation_validate --scale 0.05 --verbose
    python -m repro.analysis.translation_validate --json out.json --min-verified 25

Every rule firing is validated against its pre-firing snapshot:

* ``VERIFIED``  — the chase proved the firing equivalence-preserving
  (whole-graph, or scoped to the changed region for magic-era firings).
* ``UNKNOWN``   — out of the fragment or unprovable from the declared
  dependencies; accepted (the validator never blocks on doubt).
* ``REFUTED``   — the firing provably changed query meaning on a
  concrete counterexample database. The engine already rolled it back
  and quarantined the rule; this tool additionally **exits 1**, making
  the condition a CI failure.

Each verdict carries a stable machine-readable reason code, so the
summary includes a per-rule × per-reason histogram and ``--json``
emits the full breakdown for CI trending. ``--min-verified N`` turns a
drop of total VERIFIED firings below ``N`` into a nonzero exit — the
regression gate for the checker's fragment coverage.

The summary is plain markdown (a table of per-query verdict counts), so
CI can append the output directly to a job summary.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.resilience.fallback import ResiliencePolicy

_STATUSES = ("VERIFIED", "UNKNOWN", "REFUTED")


def _flatten_counts(per_rule):
    """Nested {rule: {status: {code: n}}} -> flat status totals."""
    counts = {status: 0 for status in _STATUSES}
    for statuses in per_rule.values():
        for status, codes in statuses.items():
            counts[status] = counts.get(status, 0) + sum(codes.values())
    return counts


def validate_workloads(scale=0.02, strategy="emst"):
    """Run the workloads under paranoid + equivalence; returns a list of
    ``(label, verdict_counts, refuted_rules)`` with ``verdict_counts``
    a dict of VERIFIED/UNKNOWN/REFUTED totals across the query's firings.
    """
    return [
        (label, counts, refuted)
        for label, counts, refuted, _ in validate_workloads_detailed(
            scale=scale, strategy=strategy
        )
    ]


def validate_workloads_detailed(scale=0.02, strategy="emst"):
    """Like :func:`validate_workloads` but each row also carries the raw
    nested per-rule verdict breakdown ``{rule: {status: {code: count}}}``.
    """
    from repro.analysis.lint import _workload_targets
    from repro.api import Connection
    from repro.sql import parse_script

    results = []
    for label, db, views_sql, query_sql in _workload_targets(scale):
        connection = Connection(db)
        script = parse_script(views_sql + ";" + query_sql)
        for view in script.views:
            db.catalog.add_view(view)
        try:
            for query in script.queries:
                policy = ResiliencePolicy(paranoid=True)
                outcome = connection.execute_query(
                    query, strategy=strategy, resilience=policy
                )
                per_rule = outcome.stats.get("equivalence_verdicts", {})
                counts = _flatten_counts(per_rule)
                refuted_rules = sorted(
                    rule_name
                    for rule_name, statuses in per_rule.items()
                    if statuses.get("REFUTED")
                )
                results.append((label, counts, refuted_rules, per_rule))
        finally:
            for view in script.views:
                db.catalog.drop_view(view.name)
    return results


def _reason_histogram(detailed):
    """{rule: {status: {code: count}}} aggregated across all queries."""
    histogram = {}
    for _, _, _, per_rule in detailed:
        for rule_name, statuses in per_rule.items():
            rule_bucket = histogram.setdefault(rule_name, {})
            for status, codes in statuses.items():
                status_bucket = rule_bucket.setdefault(status, {})
                for code, count in codes.items():
                    status_bucket[code] = status_bucket.get(code, 0) + count
    return histogram


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.translation_validate",
        description="Validate every rewrite firing across the shipped "
        "workloads with the chase-based equivalence checker.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="workload build scale (default 0.02; schemas matter most)",
    )
    parser.add_argument(
        "--strategy",
        default="emst",
        help="rewrite strategy to validate (default: emst)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list queries whose firings were all VERIFIED",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write the per-query breakdown and the per-rule reason "
        "histogram to this file as JSON",
    )
    parser.add_argument(
        "--min-verified",
        type=int,
        default=None,
        metavar="N",
        help="exit nonzero when fewer than N firings were VERIFIED "
        "(fragment-coverage regression gate)",
    )
    args = parser.parse_args(argv)

    detailed = validate_workloads_detailed(
        scale=args.scale, strategy=args.strategy
    )

    out = sys.stdout
    out.write("### Translation validation (%s)\n\n" % args.strategy)
    out.write("| Workload query | VERIFIED | UNKNOWN | REFUTED |\n")
    out.write("|---|---|---|---|\n")
    totals = {status: 0 for status in _STATUSES}
    refuted_lines = []
    for label, counts, refuted_rules, _ in detailed:
        for status in totals:
            totals[status] += counts.get(status, 0)
        if args.verbose or counts.get("UNKNOWN") or counts.get("REFUTED"):
            out.write(
                "| %s | %d | %d | %d |\n"
                % (
                    label,
                    counts.get("VERIFIED", 0),
                    counts.get("UNKNOWN", 0),
                    counts.get("REFUTED", 0),
                )
            )
        for rule_name in refuted_rules:
            refuted_lines.append(
                "REFUTED: %s — rule %r (rolled back and quarantined)"
                % (label, rule_name)
            )
    out.write(
        "| **total** | %d | %d | %d |\n\n"
        % (totals["VERIFIED"], totals["UNKNOWN"], totals["REFUTED"])
    )

    histogram = _reason_histogram(detailed)
    if histogram:
        out.write("#### Verdict reasons (per rule)\n\n")
        out.write("| Rule | Status | Reason | Count |\n")
        out.write("|---|---|---|---|\n")
        for rule_name in sorted(histogram):
            for status in _STATUSES:
                codes = histogram[rule_name].get(status)
                if not codes:
                    continue
                for code in sorted(codes):
                    out.write(
                        "| %s | %s | %s | %d |\n"
                        % (rule_name, status, code or "unspecified", codes[code])
                    )
        out.write("\n")

    if totals["UNKNOWN"]:
        out.write(
            "%d firing(s) returned UNKNOWN (out of fragment or not "
            "provable; accepted).\n" % totals["UNKNOWN"]
        )
    for line in refuted_lines:
        out.write(line + "\n")

    if args.json:
        payload = {
            "strategy": args.strategy,
            "scale": args.scale,
            "totals": totals,
            "queries": [
                {
                    "label": label,
                    "counts": counts,
                    "refuted_rules": refuted_rules,
                    "verdicts": per_rule,
                }
                for label, counts, refuted_rules, per_rule in detailed
            ],
            "rule_reason_histogram": histogram,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.write("wrote JSON breakdown to %s\n" % args.json)

    status = 0
    if totals["REFUTED"]:
        out.write(
            "\ntranslation validation FAILED: %d refuted firing(s)\n"
            % totals["REFUTED"]
        )
        status = 1
    else:
        out.write("translation validation passed: no refuted firings.\n")
    if args.min_verified is not None and totals["VERIFIED"] < args.min_verified:
        out.write(
            "translation validation FAILED: %d VERIFIED firing(s), "
            "--min-verified floor is %d\n"
            % (totals["VERIFIED"], args.min_verified)
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
