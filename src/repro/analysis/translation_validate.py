"""Command-line translation validator for the rewrite pipeline.

Runs every shipped workload query (the empdept paper query plus
experiments A-H) through the full EMST rewrite under
``ResiliencePolicy(paranoid=True)`` with chase-based equivalence
checking enabled, and reports the per-firing verdicts::

    python -m repro.analysis.translation_validate
    python -m repro.analysis.translation_validate --scale 0.05 --verbose

Every rule firing is validated against its pre-firing snapshot:

* ``VERIFIED``  — the chase proved the firing equivalence-preserving.
* ``UNKNOWN``   — out of the conjunctive fragment or unprovable from the
  declared dependencies; accepted (the validator never blocks on doubt).
* ``REFUTED``   — the firing provably changed query meaning on a
  concrete counterexample database. The engine already rolled it back
  and quarantined the rule; this tool additionally **exits 1**, making
  the condition a CI failure.

The summary is plain markdown (a table of per-query verdict counts), so
CI can append the output directly to a job summary.
"""

from __future__ import annotations

import argparse
import sys

from repro.resilience.fallback import ResiliencePolicy


def validate_workloads(scale=0.02, strategy="emst"):
    """Run the workloads under paranoid + equivalence; returns a list of
    ``(label, verdict_counts, refuted_rules)`` with ``verdict_counts``
    a dict of VERIFIED/UNKNOWN/REFUTED totals across the query's firings.
    """
    from repro.analysis.lint import _workload_targets
    from repro.api import Connection
    from repro.sql import parse_script

    results = []
    for label, db, views_sql, query_sql in _workload_targets(scale):
        connection = Connection(db)
        script = parse_script(views_sql + ";" + query_sql)
        for view in script.views:
            db.catalog.add_view(view)
        try:
            for query in script.queries:
                policy = ResiliencePolicy(paranoid=True)
                outcome = connection.execute_query(
                    query, strategy=strategy, resilience=policy
                )
                per_rule = outcome.stats.get("equivalence_verdicts", {})
                counts = {"VERIFIED": 0, "UNKNOWN": 0, "REFUTED": 0}
                refuted_rules = []
                for rule_name, statuses in per_rule.items():
                    for status, count in statuses.items():
                        counts[status] = counts.get(status, 0) + count
                    if statuses.get("REFUTED"):
                        refuted_rules.append(rule_name)
                results.append((label, counts, sorted(refuted_rules)))
        finally:
            for view in script.views:
                db.catalog.drop_view(view.name)
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.translation_validate",
        description="Validate every rewrite firing across the shipped "
        "workloads with the chase-based equivalence checker.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="workload build scale (default 0.02; schemas matter most)",
    )
    parser.add_argument(
        "--strategy",
        default="emst",
        help="rewrite strategy to validate (default: emst)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list queries whose firings were all VERIFIED",
    )
    args = parser.parse_args(argv)

    results = validate_workloads(scale=args.scale, strategy=args.strategy)

    out = sys.stdout
    out.write("### Translation validation (%s)\n\n" % args.strategy)
    out.write("| Workload query | VERIFIED | UNKNOWN | REFUTED |\n")
    out.write("|---|---|---|---|\n")
    totals = {"VERIFIED": 0, "UNKNOWN": 0, "REFUTED": 0}
    refuted_lines = []
    for label, counts, refuted_rules in results:
        for status in totals:
            totals[status] += counts.get(status, 0)
        if args.verbose or counts.get("UNKNOWN") or counts.get("REFUTED"):
            out.write(
                "| %s | %d | %d | %d |\n"
                % (
                    label,
                    counts.get("VERIFIED", 0),
                    counts.get("UNKNOWN", 0),
                    counts.get("REFUTED", 0),
                )
            )
        for rule_name in refuted_rules:
            refuted_lines.append(
                "REFUTED: %s — rule %r (rolled back and quarantined)"
                % (label, rule_name)
            )
    out.write(
        "| **total** | %d | %d | %d |\n\n"
        % (totals["VERIFIED"], totals["UNKNOWN"], totals["REFUTED"])
    )
    if totals["UNKNOWN"]:
        out.write(
            "%d firing(s) returned UNKNOWN (out of fragment or not "
            "provable; accepted).\n" % totals["UNKNOWN"]
        )
    for line in refuted_lines:
        out.write(line + "\n")
    if totals["REFUTED"]:
        out.write(
            "\ntranslation validation FAILED: %d refuted firing(s)\n"
            % totals["REFUTED"]
        )
        return 1
    out.write("translation validation passed: no refuted firings.\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
