"""Structural invariants as an analysis pass (codes ``QGM1xx``).

This is the full port of the historical ``validate_graph`` checks onto the
pass framework: the same invariants, the same message texts (callers and
tests match on them), but *collected* instead of raised, so one run reports
every violation in the graph. :func:`~repro.qgm.validate.validate_graph`
is now a thin raise-on-first-error wrapper over this pass.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Severity
from repro.analysis.framework import AnalysisContext, AnalysisPass, AnalysisReport
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType

_VALID_DISTINCT = {DistinctMode.ENFORCE, DistinctMode.PRESERVE, DistinctMode.PERMIT}
_VALID_QTYPES = (
    QuantifierType.FOREACH,
    QuantifierType.EXISTENTIAL,
    QuantifierType.ANTI,
    QuantifierType.SCALAR,
)
_SETOPS = (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT)


class StructuralPass(AnalysisPass):
    """Check the structural invariants of every reachable box."""

    name = "structural"

    def run(self, context: AnalysisContext, report: AnalysisReport) -> None:
        boxes = context.boxes
        box_ids = {id(box) for box in boxes}
        all_quantifiers = set()
        for box in boxes:
            for quantifier in box.quantifiers:
                all_quantifiers.add(quantifier)
        for box in boxes:
            try:
                self.check_box(box, box_ids, all_quantifiers, report)
            except Exception as exc:  # a *malformed* graph must not stop the run
                self.emit(
                    report,
                    "QGM199",
                    Severity.ERROR,
                    "structural check crashed on box %r: %s: %s"
                    % (box.name, type(exc).__name__, exc),
                    box=box,
                    hint="the box is malformed beyond what the invariants model",
                )

    # The per-box body is public so the wrapper in repro.qgm.validate and
    # the table-driven tests can drive it with a controlled environment.
    def check_box(self, box, box_ids, all_quantifiers, report) -> None:
        if box.distinct not in _VALID_DISTINCT:
            self.emit(
                report,
                "QGM101",
                Severity.ERROR,
                "box %r has invalid distinct mode %r" % (box.name, box.distinct),
                box=box,
                hint="use DistinctMode.ENFORCE, PRESERVE or PERMIT",
            )

        for quantifier in box.quantifiers:
            if quantifier.parent_box is not box:
                self.emit(
                    report,
                    "QGM102",
                    Severity.ERROR,
                    "quantifier %r of box %r has wrong parent link"
                    % (quantifier.name, box.name),
                    box=box,
                    quantifier=quantifier.name,
                    hint="add quantifiers through Box.add_quantifier",
                )
            if id(quantifier.input_box) not in box_ids:
                self.emit(
                    report,
                    "QGM103",
                    Severity.ERROR,
                    "quantifier %r of box %r ranges over an unreachable box"
                    % (quantifier.name, box.name),
                    box=box,
                    quantifier=quantifier.name,
                )
            if quantifier.qtype not in _VALID_QTYPES:
                self.emit(
                    report,
                    "QGM104",
                    Severity.ERROR,
                    "invalid quantifier type %r" % quantifier.qtype,
                    box=box,
                    quantifier=quantifier.name,
                )

        names = [q.name for q in box.quantifiers]
        if len(names) != len(set(names)):
            self.emit(
                report,
                "QGM105",
                Severity.ERROR,
                "box %r has duplicate quantifier names" % box.name,
                box=box,
                hint="use QueryGraph.fresh_name for generated quantifiers",
            )

        if box.kind == BoxKind.BASE:
            if box.quantifiers:
                self.emit(
                    report,
                    "QGM106",
                    Severity.ERROR,
                    "base box %r must not have quantifiers" % box.name,
                    box=box,
                )
            if box.schema is None:
                self.emit(
                    report,
                    "QGM107",
                    Severity.ERROR,
                    "base box %r lacks a schema" % box.name,
                    box=box,
                )
            return

        if box.kind == BoxKind.GROUPBY:
            self._check_groupby(box, report)
        elif box.kind in _SETOPS:
            self._check_setop(box, report)
        elif box.kind == BoxKind.OUTERJOIN:
            self._check_outerjoin(box, report)
        elif box.kind == BoxKind.SELECT:
            for column in box.columns:
                if column.expr is None:
                    self.emit(
                        report,
                        "QGM120",
                        Severity.ERROR,
                        "select box %r column %r lacks an expression"
                        % (box.name, column.name),
                        box=box,
                        column=column.name,
                    )

        self._check_expressions(box, all_quantifiers, report)

    def _check_groupby(self, box, report) -> None:
        foreach = box.foreach_quantifiers()
        if len(foreach) != 1 or len(box.quantifiers) != 1:
            self.emit(
                report,
                "QGM108",
                Severity.ERROR,
                "groupby box %r must have exactly one foreach quantifier" % box.name,
                box=box,
            )
        if box.predicates:
            self.emit(
                report,
                "QGM109",
                Severity.ERROR,
                "groupby box %r must not carry predicates" % box.name,
                box=box,
                hint="push the predicate into the input or a wrapping select box",
            )
        for column in box.columns:
            if column.expr is None:
                self.emit(
                    report,
                    "QGM110",
                    Severity.ERROR,
                    "groupby box %r column %r lacks an expression"
                    % (box.name, column.name),
                    box=box,
                    column=column.name,
                )
            elif not isinstance(column.expr, qe.QAggregate):
                if not _is_group_key(box, column.expr):
                    self.emit(
                        report,
                        "QGM111",
                        Severity.ERROR,
                        "groupby box %r column %r is neither a group key nor "
                        "an aggregate" % (box.name, column.name),
                        box=box,
                        column=column.name,
                    )

    def _check_setop(self, box, report) -> None:
        if box.predicates:
            self.emit(
                report,
                "QGM112",
                Severity.ERROR,
                "set-op box %r must not carry predicates" % box.name,
                box=box,
            )
        arity = len(box.columns)
        if box.kind in (BoxKind.INTERSECT, BoxKind.EXCEPT) and len(box.quantifiers) != 2:
            self.emit(
                report,
                "QGM113",
                Severity.ERROR,
                "%s box %r must have two inputs" % (box.kind, box.name),
                box=box,
            )
        if box.kind == BoxKind.UNION and len(box.quantifiers) < 1:
            self.emit(
                report,
                "QGM113",
                Severity.ERROR,
                "union box %r must have at least one input" % box.name,
                box=box,
            )
        for quantifier in box.quantifiers:
            if quantifier.qtype != QuantifierType.FOREACH:
                self.emit(
                    report,
                    "QGM114",
                    Severity.ERROR,
                    "set-op box %r may only have foreach quantifiers" % box.name,
                    box=box,
                    quantifier=quantifier.name,
                )
            # Every input is compared against the set-op box's *own* column
            # list, so the offending branch is named even when the first
            # input silently disagrees with a later-added one.
            input_arity = len(quantifier.input_box.columns)
            if input_arity != arity:
                self.emit(
                    report,
                    "QGM115",
                    Severity.ERROR,
                    "set-op box %r input %r has mismatched arity "
                    "(%d columns, box declares %d)"
                    % (box.name, quantifier.name, input_arity, arity),
                    box=box,
                    quantifier=quantifier.name,
                )
        for column in box.columns:
            if column.expr is not None:
                self.emit(
                    report,
                    "QGM116",
                    Severity.ERROR,
                    "set-op box %r columns are positional (no expressions)"
                    % box.name,
                    box=box,
                    column=column.name,
                )

    def _check_outerjoin(self, box, report) -> None:
        if len(box.quantifiers) != 2:
            self.emit(
                report,
                "QGM117",
                Severity.ERROR,
                "outer-join box %r must have two inputs" % box.name,
                box=box,
            )
        for quantifier in box.quantifiers:
            if quantifier.qtype != QuantifierType.FOREACH:
                self.emit(
                    report,
                    "QGM118",
                    Severity.ERROR,
                    "outer-join box %r may only have foreach quantifiers" % box.name,
                    box=box,
                    quantifier=quantifier.name,
                )
        for column in box.columns:
            if column.expr is None:
                self.emit(
                    report,
                    "QGM119",
                    Severity.ERROR,
                    "outer-join box %r column %r lacks an expression"
                    % (box.name, column.name),
                    box=box,
                    column=column.name,
                )

    def _check_expressions(self, box, all_quantifiers, report) -> None:
        # Expression sanity: every referenced quantifier exists somewhere in
        # the graph, references name existing columns (local *and*
        # correlated), and aggregates only appear in groupby output columns.
        for expression in box.all_expressions():
            for node in qe.walk(expression):
                if isinstance(node, qe.QColRef):
                    if node.quantifier not in all_quantifiers:
                        self.emit(
                            report,
                            "QGM121",
                            Severity.ERROR,
                            "box %r references a dangling quantifier %r"
                            % (box.name, node.quantifier.name),
                            box=box,
                            quantifier=node.quantifier.name,
                            column=node.column,
                        )
                        continue  # its input box cannot be trusted below
                    if not node.quantifier.input_box.has_column(node.column):
                        self.emit(
                            report,
                            "QGM122",
                            Severity.ERROR,
                            "box %r references missing column %s.%s"
                            % (box.name, node.quantifier.name, node.column),
                            box=box,
                            quantifier=node.quantifier.name,
                            column=node.column,
                        )
                if isinstance(node, qe.QAggregate) and box.kind != BoxKind.GROUPBY:
                    self.emit(
                        report,
                        "QGM123",
                        Severity.ERROR,
                        "aggregate found outside a groupby box (in %r)" % box.name,
                        box=box,
                        hint="aggregates are only valid as groupby output columns",
                    )


def _is_group_key(box, expression) -> bool:
    return any(qe.expr_equal(expression, key) for key in box.group_keys)
