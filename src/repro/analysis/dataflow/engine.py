"""A generic monotone-framework fixpoint engine over the QGM box graph.

A :class:`BoxAnalysis` supplies, per box, an optimistic initial fact
(:meth:`~BoxAnalysis.top`), a pessimistic fallback
(:meth:`~BoxAnalysis.bottom`), and a transfer function
(:meth:`~BoxAnalysis.transfer`) that recomputes the box's fact from the
facts of the boxes it references. :func:`solve` runs the analysis to a
fixpoint:

1. collect every box reachable from the roots (through quantifier edges
   and ``linked_magic`` links — the same dependency notion the stratum
   machinery uses),
2. condense the dependency graph into strongly connected components
   (Tarjan, producers first),
3. solve acyclic components with a single transfer call, and cyclic ones
   by *optimistic iteration*: every member starts at ``top`` and the
   component's transfers run round-robin until the facts stop changing.

Optimistic (greatest-fixpoint) iteration is what lets facts survive
recursion: a claim about a cyclic box holds in the result iff it is
self-consistent under the transfer functions. Soundness follows from the
increasing-chain semantics of recursive components — the evaluator
computes a least fixpoint R₀ ⊆ R₁ ⊆ …, every row enters at some finite
stage, and a one-step-sound transfer preserves per-row (and per-row-pair)
properties at every stage, hence in the limit. Termination is guaranteed
by a per-component round cap; if a non-monotone transfer oscillates past
the cap, every member falls back to ``bottom`` (sound: "no facts").

Correlation edges need no special casing: a transfer function reading the
fact of a box outside the solved set receives ``None`` and must treat it
as "unknown" (``facts.get`` conventions below).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.qgm.stratum import _tarjan_scc

#: Rounds granted per cyclic component: ``_ROUNDS_BASE + _ROUNDS_PER_BOX *
#: len(component)``. Generous — the shipped analyses converge in a handful
#: of rounds — but finite, so even a buggy transfer terminates.
_ROUNDS_BASE = 16
_ROUNDS_PER_BOX = 8


class BoxAnalysis:
    """One dataflow analysis: a lattice of facts plus transfer functions.

    Facts must be immutable values with a meaningful ``==`` (frozensets,
    tuples of frozensets, ...): the engine detects convergence by equality.
    """

    #: Analysis name, for diagnostics and timing reports.
    name = "abstract"

    def top(self, box) -> Any:
        """The optimistic initial fact (strongest claim) for a box inside a
        recursive component."""
        raise NotImplementedError

    def bottom(self, box) -> Any:
        """The sound no-information fact, used when iteration is cut off."""
        raise NotImplementedError

    def transfer(self, box, facts: Dict[int, Any]) -> Any:
        """Recompute ``box``'s fact. ``facts`` maps ``id(child_box)`` to the
        current fact of each solved box; referenced boxes missing from the
        map (correlation into unsolved territory) mean "unknown"."""
        raise NotImplementedError


def reachable_boxes(roots: Iterable) -> List:
    """Every box reachable from ``roots`` via quantifier edges and
    ``linked_magic``, in deterministic discovery order."""
    out = []
    seen = set()
    stack = [root for root in roots if root is not None]
    stack.reverse()
    while stack:
        box = stack.pop()
        if id(box) in seen:
            continue
        seen.add(id(box))
        out.append(box)
        children = [q.input_box for q in box.quantifiers]
        children.extend(box.linked_magic)
        for child in reversed(children):
            if id(child) not in seen:
                stack.append(child)
    return out


def _successors_in(universe_ids):
    def successors(box):
        emitted = set()
        for quantifier in box.quantifiers:
            child = quantifier.input_box
            if id(child) in universe_ids and id(child) not in emitted:
                emitted.add(id(child))
                yield child
        for magic in box.linked_magic:
            if id(magic) in universe_ids and id(magic) not in emitted:
                emitted.add(id(magic))
                yield magic

    return successors


def solve(analysis: BoxAnalysis, roots: Iterable) -> Dict[int, Any]:
    """Run ``analysis`` to a fixpoint over everything reachable from
    ``roots``; returns ``id(box) -> fact``."""
    boxes = reachable_boxes(roots)
    universe_ids = {id(box) for box in boxes}
    components = _tarjan_scc(boxes, _successors_in(universe_ids))
    # Tarjan completes a component only after everything it depends on, so
    # the emitted order is already producers-first.
    facts: Dict[int, Any] = {}
    for component in components:
        if len(component) == 1 and not _self_loop(component[0]):
            box = component[0]
            facts[id(box)] = analysis.transfer(box, facts)
            continue
        _solve_cycle(analysis, component, facts)
    return facts


def _self_loop(box) -> bool:
    return any(child is box for child in box.referenced_boxes())


def _solve_cycle(analysis: BoxAnalysis, component: List, facts: Dict[int, Any]) -> None:
    """Optimistic round-robin iteration of one recursive component."""
    for box in component:
        facts[id(box)] = analysis.top(box)
    rounds = _ROUNDS_BASE + _ROUNDS_PER_BOX * len(component)
    for _ in range(rounds):
        changed = False
        for box in component:
            updated = analysis.transfer(box, facts)
            if updated != facts[id(box)]:
                facts[id(box)] = updated
                changed = True
        if not changed:
            return
    # Did not converge within the budget: give up soundly.
    for box in component:
        facts[id(box)] = analysis.bottom(box)
