"""Nullability dataflow under SQL's three-valued logic.

A fact is a :class:`NullFact`: two frozensets of lower-cased output column
names — columns proven NOT NULL in every row, and columns proven *always*
NULL. Sources of not-nullness:

* base-table ``NOT NULL`` constraints (primary-key columns are implicitly
  not-null),
* *null-rejecting* predicates: under 3VL a comparison (or LIKE) with a
  NULL operand yields UNKNOWN and the row is filtered, so a column
  referenced by a conjunct comparison is not-null in the rows that
  survive — unless the reference sits under an expression that can mask
  the NULL (``CASE``, scalar functions, ``IS NULL`` itself),
* strict expression propagation (arithmetic over not-null operands is
  not-null; ``x IS NULL`` is always not-null, ``COUNT`` is always
  not-null, ...).

Nullability *producers*: scalar subquery quantifiers (an empty match binds
NULL), the non-preserved side of an outer join, aggregates over possibly
empty groups (global aggregation), and NULL literals (the source of
always-null columns).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, NamedTuple, Set, Tuple

from repro.analysis.dataflow.engine import BoxAnalysis, solve
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, QuantifierType

_COMPARISONS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
#: Expression nodes that can turn a NULL operand into a non-NULL result
#: (so references under them are not grounded by null-rejecting filters).
_MASKING = (qe.QCase, qe.QFunc, qe.QIsNull, qe.QAggregate)


class NullFact(NamedTuple):
    """Per-box nullability claims (lower-cased output column names)."""

    notnull: FrozenSet[str]
    allnull: FrozenSet[str]


_EMPTY = NullFact(frozenset(), frozenset())


def _all_columns(box) -> FrozenSet[str]:
    return frozenset(name.lower() for name in box.column_names)


class NullabilityAnalysis(BoxAnalysis):
    """Infers NOT-NULL and always-NULL output columns per box."""

    name = "nullflow"

    def top(self, box) -> NullFact:
        columns = _all_columns(box)
        return NullFact(columns, columns)

    def bottom(self, box) -> NullFact:
        return _EMPTY

    def transfer(self, box, facts: Dict[int, NullFact]) -> NullFact:
        if box.kind == BoxKind.BASE:
            return self._base_fact(box)
        if box.kind == BoxKind.SELECT:
            return self._select_fact(box, facts)
        if box.kind == BoxKind.GROUPBY:
            return self._groupby_fact(box, facts)
        if box.kind == BoxKind.UNION:
            return self._setop_fact(box, facts, require_all=True)
        if box.kind == BoxKind.INTERSECT:
            return self._setop_fact(box, facts, require_all=False)
        if box.kind == BoxKind.EXCEPT:
            if not box.quantifiers:
                return _EMPTY
            return self._positional_fact(box, box.quantifiers[0], facts)
        if box.kind == BoxKind.OUTERJOIN:
            return self._outerjoin_fact(box, facts)
        return _EMPTY

    # -- per-kind transfers ---------------------------------------------------

    @staticmethod
    def _base_fact(box) -> NullFact:
        if box.schema is None:
            return _EMPTY
        available = {name.lower() for name in box.column_names}
        notnull: Set[str] = set()
        for column in box.schema.columns:
            if getattr(column, "not_null", False):
                notnull.add(column.name.lower())
        if box.schema.primary_key:
            notnull.update(part.lower() for part in box.schema.primary_key)
        return NullFact(frozenset(notnull & available), frozenset())

    def _select_fact(self, box, facts) -> NullFact:
        grounded = self._null_rejected_refs(box)
        notnull: Set[str] = set()
        allnull: Set[str] = set()
        for column in box.columns:
            if column.expr is None:
                continue
            name = column.name.lower()
            if self._expr_not_null(column.expr, facts, grounded):
                notnull.add(name)
            if self._expr_all_null(column.expr, facts):
                allnull.add(name)
        return NullFact(frozenset(notnull), frozenset(allnull))

    def _groupby_fact(self, box, facts) -> NullFact:
        notnull: Set[str] = set()
        allnull: Set[str] = set()
        grounded: Set[Tuple[int, str]] = set()
        # With group keys every emitted group holds at least one row, so
        # SUM/MIN/MAX/AVG over a not-null argument cannot be NULL. Global
        # aggregation (no group keys) emits one row even for empty input,
        # where every aggregate but COUNT is NULL.
        grouped = bool(box.group_keys)
        for column in box.columns:
            name = column.name.lower()
            expr = column.expr
            if expr is None:
                continue
            if isinstance(expr, qe.QAggregate):
                if expr.func == "COUNT":
                    notnull.add(name)
                elif grouped and expr.arg is not None and self._expr_not_null(
                    expr.arg, facts, grounded
                ):
                    notnull.add(name)
                if (
                    expr.func != "COUNT"
                    and expr.arg is not None
                    and self._expr_all_null(expr.arg, facts)
                ):
                    allnull.add(name)
            else:
                if self._expr_not_null(expr, facts, grounded):
                    notnull.add(name)
                if self._expr_all_null(expr, facts):
                    allnull.add(name)
        return NullFact(frozenset(notnull), frozenset(allnull))

    def _setop_fact(self, box, facts, require_all: bool) -> NullFact:
        """UNION needs a claim in every branch; INTERSECT/EXCEPT inherit a
        claim from any branch (the output is a sub-multiset of each)."""
        branch_facts = [
            self._positional_fact(box, quantifier, facts)
            for quantifier in box.quantifiers
        ]
        if not branch_facts:
            return _EMPTY
        notnull = set(branch_facts[0].notnull)
        allnull = set(branch_facts[0].allnull)
        for fact in branch_facts[1:]:
            if require_all:
                notnull &= fact.notnull
                allnull &= fact.allnull
            else:
                notnull |= fact.notnull
                allnull |= fact.allnull
        return NullFact(frozenset(notnull), frozenset(allnull))

    @staticmethod
    def _positional_fact(box, quantifier, facts) -> NullFact:
        child = quantifier.input_box
        fact = facts.get(id(child))
        if fact is None:
            return _EMPTY
        child_names = [c.name.lower() for c in child.columns]
        own_names = [c.name.lower() for c in box.columns]
        notnull: Set[str] = set()
        allnull: Set[str] = set()
        for index, own in enumerate(own_names):
            if index >= len(child_names):
                continue
            if child_names[index] in fact.notnull:
                notnull.add(own)
            if child_names[index] in fact.allnull:
                allnull.add(own)
        return NullFact(frozenset(notnull), frozenset(allnull))

    def _outerjoin_fact(self, box, facts) -> NullFact:
        if len(box.quantifiers) != 2:
            return _EMPTY
        right = box.quantifiers[1]
        # Null-extension makes every right-side column nullable; the ON
        # condition does not filter preserved rows, so no null-rejection.
        masked = dict(facts)
        right_fact = facts.get(id(right.input_box), _EMPTY)
        masked[id(right.input_box)] = NullFact(frozenset(), right_fact.allnull)
        grounded: Set[Tuple[int, str]] = set()
        notnull: Set[str] = set()
        allnull: Set[str] = set()
        for column in box.columns:
            if column.expr is None:
                continue
            name = column.name.lower()
            if self._expr_not_null(column.expr, masked, grounded):
                notnull.add(name)
            if self._expr_all_null(column.expr, facts):
                allnull.add(name)
        return NullFact(frozenset(notnull), frozenset(allnull))

    # -- null-rejecting predicates --------------------------------------------

    def _null_rejected_refs(self, box) -> Set[Tuple[int, str]]:
        """``(id(quantifier), column)`` pairs a surviving row cannot hold
        NULL in, because a conjunct comparison references them strictly."""
        rejected: Set[Tuple[int, str]] = set()
        for predicate in box.predicates:
            for conjunct in qe.conjuncts(predicate):
                self._collect_null_rejected(conjunct, rejected)
        return rejected

    def _collect_null_rejected(self, conjunct, rejected) -> None:
        if isinstance(conjunct, qe.QBinary):
            if conjunct.op == "AND":
                self._collect_null_rejected(conjunct.left, rejected)
                self._collect_null_rejected(conjunct.right, rejected)
                return
            if conjunct.op in _COMPARISONS:
                self._collect_strict_refs(conjunct.left, rejected)
                self._collect_strict_refs(conjunct.right, rejected)
            return
        if isinstance(conjunct, qe.QLike) and not conjunct.negated:
            self._collect_strict_refs(conjunct.operand, rejected)
            self._collect_strict_refs(conjunct.pattern, rejected)

    def _collect_strict_refs(self, expr, rejected) -> None:
        """Column references reached only through null-strict operators."""
        if isinstance(expr, qe.QColRef):
            rejected.add((id(expr.quantifier), expr.column.lower()))
            return
        if isinstance(expr, _MASKING):
            return
        if isinstance(expr, qe.QBinary) and expr.op in ("AND", "OR"):
            return
        for child in expr.children():
            self._collect_strict_refs(child, rejected)

    # -- expression nullability -----------------------------------------------

    def _ref_not_null(self, ref, facts, grounded) -> bool:
        quantifier = ref.quantifier
        if (id(quantifier), ref.column.lower()) in grounded:
            return True
        if quantifier.qtype == QuantifierType.SCALAR or quantifier.decorrelated:
            # An empty scalar-subquery match binds NULL.
            return False
        fact = facts.get(id(quantifier.input_box))
        return fact is not None and ref.column.lower() in fact.notnull

    def _expr_not_null(self, expr, facts, grounded) -> bool:
        if isinstance(expr, qe.QLiteral):
            return expr.value is not None
        if isinstance(expr, qe.QColRef):
            return self._ref_not_null(expr, facts, grounded)
        if isinstance(expr, qe.QIsNull):
            return True  # IS [NOT] NULL never yields NULL
        if isinstance(expr, qe.QUnary):
            return self._expr_not_null(expr.operand, facts, grounded)
        if isinstance(expr, qe.QBinary):
            # Strict for arithmetic/comparison/concat; conservative (still
            # requiring both operands) for AND/OR three-valued logic.
            return self._expr_not_null(
                expr.left, facts, grounded
            ) and self._expr_not_null(expr.right, facts, grounded)
        if isinstance(expr, qe.QLike):
            return self._expr_not_null(
                expr.operand, facts, grounded
            ) and self._expr_not_null(expr.pattern, facts, grounded)
        if isinstance(expr, qe.QCase):
            if expr.default is None:
                return False  # a missing ELSE yields NULL
            values = [value for _, value in expr.branches] + [expr.default]
            return all(
                self._expr_not_null(value, facts, grounded) for value in values
            )
        return False  # QFunc, QAggregate outside groupby: unknown

    def _expr_all_null(self, expr, facts) -> bool:
        if isinstance(expr, qe.QLiteral):
            return expr.value is None
        if isinstance(expr, qe.QColRef):
            fact = facts.get(id(expr.quantifier.input_box))
            return fact is not None and expr.column.lower() in fact.allnull
        if isinstance(expr, qe.QUnary) and expr.op != "NOT":
            return self._expr_all_null(expr.operand, facts)
        if isinstance(expr, qe.QBinary) and expr.op in ("+", "-", "*", "/", "%", "||"):
            return self._expr_all_null(expr.left, facts) or self._expr_all_null(
                expr.right, facts
            )
        return False


def solve_nullability(root_box) -> Dict[int, NullFact]:
    """Solve nullability over everything reachable from ``root_box``."""
    return solve(NullabilityAnalysis(), [root_box])


def null_rejected_refs(box) -> Set[Tuple[int, str]]:
    """``(id(quantifier), column)`` pairs grounded by ``box``'s predicates."""
    return NullabilityAnalysis()._null_rejected_refs(box)


def null_rejecting_refs(predicates) -> Set[Tuple[int, str]]:
    """References a row surviving all of ``predicates`` cannot hold NULL in."""
    analysis = NullabilityAnalysis()
    rejected: Set[Tuple[int, str]] = set()
    for predicate in predicates:
        for conjunct in qe.conjuncts(predicate):
            analysis._collect_null_rejected(conjunct, rejected)
    return rejected


def strict_refs(expr) -> Set[Tuple[int, str]]:
    """References reached only through null-strict operators in ``expr``
    (a NULL in any of them forces the whole expression to NULL)."""
    refs: Set[Tuple[int, str]] = set()
    NullabilityAnalysis()._collect_strict_refs(expr, refs)
    return refs
