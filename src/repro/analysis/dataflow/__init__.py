"""Interbox dataflow analyses over QGM (monotone frameworks).

The package provides a generic fixpoint engine (:mod:`engine`) that runs a
:class:`~repro.analysis.dataflow.engine.BoxAnalysis` — a lattice of facts
plus one transfer function per box — over the box dependency graph,
including recursive cycles, and three concrete analyses:

* :mod:`keyflow` — unique keys / duplicate-freeness (the fixpoint
  generalization of :mod:`repro.qgm.keys`, and its backend).
* :mod:`nullflow` — column nullability under SQL's three-valued logic.
* :mod:`bindflow` — binding propagation: which output columns are
  restricted to magic/constant binding values, used to audit adornments.
"""

from repro.analysis.dataflow.engine import BoxAnalysis, solve
from repro.analysis.dataflow.keyflow import KeyAnalysis, solve_box_keys, solve_keys
from repro.analysis.dataflow.nullflow import (
    NullabilityAnalysis,
    NullFact,
    solve_nullability,
)
from repro.analysis.dataflow.bindflow import BindingAnalysis, solve_bindings

__all__ = [
    "BindingAnalysis",
    "BoxAnalysis",
    "KeyAnalysis",
    "NullFact",
    "NullabilityAnalysis",
    "solve",
    "solve_bindings",
    "solve_box_keys",
    "solve_keys",
    "solve_nullability",
]
