"""Key / duplicate-freeness dataflow (the backend of :mod:`repro.qgm.keys`).

A fact is a tuple of *keys*; each key is a frozenset of lower-cased output
column names whose values are unique in the box's output. The empty
frozenset is the strongest key — "at most one row" — and subsumes every
other. The lattice is ordered by claim strength (more/smaller keys above),
with top ``(frozenset(),)`` and bottom ``()``.

Transfer functions (one-step sound w.r.t. the evaluator's semantics):

* ``distinct=ENFORCE`` — the full output column set is a key (suppressed
  for the one box a ``ignore_enforce`` query targets).
* BASE — the declared primary/unique keys.
* GROUPBY — the group-key columns, when all group keys are exposed.
* SELECT — *determined-quantifier elimination*: a foreach quantifier whose
  full key is equated to expressions over quantifiers still under
  consideration (or constants) contributes no multiplicity; the keys of
  the remaining quantifiers combine into join keys. A child proven to
  yield at most one row (empty key) is eliminable unconditionally, and a
  select box with no foreach quantifiers yields at most one row itself.
* INTERSECT — keys of *either* input carry over positionally (the output
  is a sub-multiset of each input).
* EXCEPT — keys of the left input carry over positionally.
* OUTERJOIN — the union of a left key and a right key is a key (matched
  pairs are unique per key pair; null-extended rows are unique per left
  key).
* UNION — no structural keys (branches may overlap); only ENFORCE helps.

Unlike the historical recursive derivation, the fixpoint derives keys
*through* recursive cycles: a cyclic box's claim survives iff it is
self-consistent, which is sound because every row of the recursive least
fixpoint appears at a finite stage (see :mod:`engine`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.dataflow.engine import BoxAnalysis, solve
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode

#: Cap on the cartesian combination of per-quantifier key choices.
_MAX_KEYS = 16

KeyFact = Tuple[frozenset, ...]


def minimal_keys(keys) -> List[frozenset]:
    """Drop keys that are supersets of other keys; deduplicate."""
    unique = sorted(set(keys), key=lambda key: (len(key), sorted(key)))
    out: List[frozenset] = []
    for key in unique:
        if not any(existing <= key and existing != key for existing in out):
            if key not in out:
                out.append(key)
    return out


class KeyAnalysis(BoxAnalysis):
    """Derives unique keys for every box of the solved subgraph."""

    name = "keyflow"

    def __init__(self, ignore_enforce_target: Optional[int] = None):
        #: ``id(box)`` whose DISTINCT enforcement is ignored (the
        #: ``ignore_enforce`` flag of :func:`repro.qgm.keys.box_keys`).
        self.ignore_enforce_target = ignore_enforce_target

    def top(self, box) -> KeyFact:
        return (frozenset(),)

    def bottom(self, box) -> KeyFact:
        return ()

    def transfer(self, box, facts: Dict[int, KeyFact]) -> KeyFact:
        keys: List[frozenset] = []
        if (
            box.distinct == DistinctMode.ENFORCE
            and id(box) != self.ignore_enforce_target
        ):
            keys.append(frozenset(name.lower() for name in box.column_names))

        if box.kind == BoxKind.BASE:
            keys.extend(self._base_keys(box))
        elif box.kind == BoxKind.GROUPBY:
            keys.extend(self._groupby_keys(box))
        elif box.kind == BoxKind.SELECT:
            keys.extend(self._select_keys(box, facts))
        elif box.kind == BoxKind.INTERSECT:
            for quantifier in box.quantifiers:
                keys.extend(self._positional_keys(box, quantifier, facts))
        elif box.kind == BoxKind.EXCEPT:
            if box.quantifiers:
                keys.extend(self._positional_keys(box, box.quantifiers[0], facts))
        elif box.kind == BoxKind.OUTERJOIN:
            keys.extend(self._outerjoin_keys(box, facts))

        return tuple(minimal_keys(keys))

    # -- per-kind derivations -------------------------------------------------

    @staticmethod
    def _base_keys(box) -> List[frozenset]:
        if box.schema is None:
            return []
        available = {name.lower() for name in box.column_names}
        out = []
        for declared in box.schema.all_keys():
            lowered = frozenset(part.lower() for part in declared)
            if lowered <= available:
                out.append(lowered)
        return out

    @staticmethod
    def _groupby_keys(box) -> List[frozenset]:
        key_columns = {
            column.name.lower()
            for column in box.columns
            if not isinstance(column.expr, qe.QAggregate)
        }
        # The group keys functionally determine the whole row, so the set
        # of non-aggregate output columns is a key iff every group key is
        # exposed as an output column.
        exposed = 0
        for group_key in box.group_keys:
            for column in box.columns:
                if column.expr is not None and qe.expr_equal(column.expr, group_key):
                    exposed += 1
                    break
        if box.group_keys and exposed == len(box.group_keys):
            return [frozenset(key_columns)]
        if not box.group_keys:
            # Global aggregation produces exactly one row.
            return [frozenset()]
        return []

    @staticmethod
    def _positional_keys(box, quantifier, facts) -> List[frozenset]:
        child = quantifier.input_box
        child_names = [c.name.lower() for c in child.columns]
        own_names = [c.name.lower() for c in box.columns]
        position = {name: idx for idx, name in enumerate(child_names)}
        out = []
        for key in facts.get(id(child), ()):
            try:
                mapped = frozenset(own_names[position[part]] for part in key)
            except (KeyError, IndexError):
                continue
            out.append(mapped)
        return out

    def _select_keys(self, box, facts) -> List[frozenset]:
        foreach = box.foreach_quantifiers()
        if not foreach:
            # No foreach quantifiers: the box emits at most one row (its
            # constant column tuple, gated by any E/A subqueries). This is
            # what proves constant magic seeds duplicate-free.
            return [frozenset()]

        child_keys = {
            quantifier: list(facts.get(id(quantifier.input_box), ()))
            for quantifier in foreach
        }

        local = set(box.quantifiers)
        # bound_supports[q][col] = list of quantifier-support frozensets: one
        # per equality ``q.col = <expr>``, holding the foreach quantifiers
        # the other side references (empty for constants). A column counts
        # as bound only while all quantifiers of some support set are still
        # under consideration — this is what makes mutually-determined
        # quantifier pairs ineligible for joint elimination.
        bound_supports: Dict[object, Dict[str, List[frozenset]]] = {
            quantifier: {} for quantifier in foreach
        }
        for predicate in box.predicates:
            for conjunct in qe.conjuncts(predicate):
                if not (isinstance(conjunct, qe.QBinary) and conjunct.op == "="):
                    continue
                sides = (
                    (conjunct.left, conjunct.right),
                    (conjunct.right, conjunct.left),
                )
                for side, other in sides:
                    if not isinstance(side, qe.QColRef):
                        continue
                    quantifier = side.quantifier
                    if quantifier not in bound_supports:
                        continue
                    other_refs = qe.column_refs(other)
                    if any(ref.quantifier is quantifier for ref in other_refs):
                        continue
                    if any(ref.quantifier not in local for ref in other_refs):
                        continue
                    support = frozenset(
                        ref.quantifier
                        for ref in other_refs
                        if ref.quantifier in bound_supports
                    )
                    bound_supports[quantifier].setdefault(
                        side.column.lower(), []
                    ).append(support)

        remaining = list(foreach)

        def eliminable(quantifier):
            still = set(remaining) - {quantifier}
            supported = {
                col
                for col, supports in bound_supports[quantifier].items()
                if any(support <= still for support in supports)
            }
            return any(key <= supported for key in child_keys[quantifier])

        changed = True
        while changed and remaining:
            changed = False
            for quantifier in list(remaining):
                if eliminable(quantifier):
                    remaining.remove(quantifier)
                    changed = True
                    break

        if not remaining:
            return [frozenset()]

        # Union the remaining quantifiers' keys, mapped through the output.
        output_of = {}
        for column in box.columns:
            if isinstance(column.expr, qe.QColRef):
                output_of[(column.expr.quantifier, column.expr.column.lower())] = (
                    column.name.lower()
                )

        per_quantifier = []
        for quantifier in remaining:
            candidates = []
            for key in child_keys[quantifier]:
                try:
                    candidates.append(
                        frozenset(output_of[(quantifier, part)] for part in key)
                    )
                except KeyError:
                    continue
            if not candidates:
                return []
            per_quantifier.append(candidates)

        combined = [frozenset()]
        for candidates in per_quantifier:
            combined = [
                base | choice for base in combined for choice in candidates
            ][:_MAX_KEYS]
        return combined

    def _outerjoin_keys(self, box, facts) -> List[frozenset]:
        if len(box.quantifiers) != 2:
            return []
        output_of = {}
        for column in box.columns:
            if isinstance(column.expr, qe.QColRef):
                output_of[(column.expr.quantifier, column.expr.column.lower())] = (
                    column.name.lower()
                )
        per_side = []
        for quantifier in box.quantifiers:
            candidates = []
            for key in facts.get(id(quantifier.input_box), ()):
                try:
                    candidates.append(
                        frozenset(output_of[(quantifier, part)] for part in key)
                    )
                except KeyError:
                    continue
            if not candidates:
                return []
            per_side.append(candidates)
        combined = [frozenset()]
        for candidates in per_side:
            combined = [
                base | choice for base in combined for choice in candidates
            ][:_MAX_KEYS]
        return combined


def solve_keys(root_box, ignore_enforce: bool = False) -> Dict[int, KeyFact]:
    """Solve the key analysis over everything reachable from ``root_box``;
    returns ``id(box) -> tuple of keys``. ``ignore_enforce`` suppresses the
    DISTINCT-enforcement key of ``root_box`` itself (only)."""
    analysis = KeyAnalysis(
        ignore_enforce_target=id(root_box) if ignore_enforce else None
    )
    return solve(analysis, [root_box])


def solve_box_keys(box, ignore_enforce: bool = False) -> List[frozenset]:
    """The keys of one box, fixpoint-derived (backend of ``box_keys``)."""
    return list(solve_keys(box, ignore_enforce=ignore_enforce).get(id(box), ()))
