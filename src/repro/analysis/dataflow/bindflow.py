"""Binding-propagation dataflow: which output columns are *bound*.

A fact is a frozenset of lower-cased output column names whose values are
restricted to a binding set — values flowing out of a magic table, a
constant, or a column already proven bound in a child box. This is the
semantic property a ``b`` letter in an adornment (:mod:`repro.magic.
adornment`) claims, so the analysis is what lets :mod:`repro.analysis.
dataflow_checks` audit every adornment ``adorn.py`` produced.

Transfer functions:

* magic / condition-magic boxes — every column is bound by construction
  (the box *is* the binding set).
* SELECT (and supplementary boxes, which are selects) — *grounded-reference
  closure*: references to magic quantifiers and to bound child columns are
  grounded; an equality conjunct whose one side is fully grounded grounds
  a plain column reference on the other side; an output column is bound
  when its defining expression only uses grounded references (constants
  have none and are trivially bound).
* GROUPBY — a group-key output column is bound when its key expression is
  grounded in the input's fact.
* UNION — bound in every branch (positionally); INTERSECT — bound in any
  branch; EXCEPT — the left branch decides.
* OUTERJOIN — left-side columns inherit the left input's fact (the
  null-extended right side is never bound).

Boxes with a linked magic table additionally get the link's declared
``bound_columns`` — the restriction exists even before pass-down rewires
it into the branches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.analysis.dataflow.engine import BoxAnalysis, solve
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, MagicRole

BindFact = FrozenSet[str]

_EMPTY: BindFact = frozenset()


def _linked_magic_columns(box) -> Set[str]:
    out: Set[str] = set()
    for magic in box.linked_magic:
        for name in magic.properties.get("bound_columns", []):
            out.add(name.lower())
    return out


class BindingAnalysis(BoxAnalysis):
    """Infers magic/constant-bound output columns per box."""

    name = "bindflow"

    def top(self, box) -> BindFact:
        return frozenset(name.lower() for name in box.column_names)

    def bottom(self, box) -> BindFact:
        return _EMPTY

    def transfer(self, box, facts: Dict[int, BindFact]) -> BindFact:
        if box.magic_role in (MagicRole.MAGIC, MagicRole.CONDITION_MAGIC):
            return frozenset(name.lower() for name in box.column_names)
        bound = _linked_magic_columns(box)
        if box.kind == BoxKind.SELECT:
            bound |= self._select_bound(box, facts)
        elif box.kind == BoxKind.GROUPBY:
            bound |= self._groupby_bound(box, facts)
        elif box.kind == BoxKind.UNION:
            bound |= self._setop_bound(box, facts, require_all=True)
        elif box.kind == BoxKind.INTERSECT:
            bound |= self._setop_bound(box, facts, require_all=False)
        elif box.kind == BoxKind.EXCEPT:
            if box.quantifiers:
                bound |= self._positional_bound(box, box.quantifiers[0], facts)
        elif box.kind == BoxKind.OUTERJOIN:
            bound |= self._outerjoin_bound(box, facts)
        return frozenset(bound)

    # -- per-kind transfers ---------------------------------------------------

    def _select_bound(self, box, facts) -> Set[str]:
        local = set(box.quantifiers)
        grounded_refs: Set[tuple] = set()
        #: Whole expressions equated to a grounded side ("computed join
        #: columns": ``m.mc = f(e.x)`` grounds ``f(e.x)`` even though
        #: ``e.x`` itself stays free).
        grounded_exprs: list = []

        def ref_grounded(ref) -> bool:
            if (id(ref.quantifier), ref.column.lower()) in grounded_refs:
                return True
            quantifier = ref.quantifier
            if quantifier not in local:
                return False  # correlation into an outer box: unknown
            if quantifier.is_magic:
                return True
            # Magic, condition-magic and supplementary boxes *are* binding
            # sets (the supplementary relation holds the restricted outer
            # prefix), so any column drawn from one is a binding value —
            # this is what keeps adornments justified after phase-3 merging
            # replaces the magic quantifier with a join against the shared
            # supplementary box.
            if quantifier.input_box.magic_role != MagicRole.REGULAR:
                return True
            fact = facts.get(id(quantifier.input_box))
            return fact is not None and ref.column.lower() in fact

        def expr_grounded(expr) -> bool:
            if any(qe.expr_equal(expr, known) for known in grounded_exprs):
                return True
            refs = qe.column_refs(expr)
            return all(ref_grounded(ref) for ref in refs)

        equalities = []
        for predicate in box.predicates:
            for conjunct in qe.conjuncts(predicate):
                if isinstance(conjunct, qe.QBinary) and conjunct.op == "=":
                    equalities.append(conjunct)
        for quantifier in box.quantifiers:
            for predicate in quantifier.selector_predicates:
                for conjunct in qe.conjuncts(predicate):
                    if isinstance(conjunct, qe.QBinary) and conjunct.op == "=":
                        equalities.append(conjunct)

        changed = True
        while changed:
            changed = False
            for equality in equalities:
                sides = (
                    (equality.left, equality.right),
                    (equality.right, equality.left),
                )
                for side, other in sides:
                    if expr_grounded(side):
                        continue
                    if not expr_grounded(other):
                        continue
                    if isinstance(side, qe.QColRef):
                        grounded_refs.add(
                            (id(side.quantifier), side.column.lower())
                        )
                    else:
                        grounded_exprs.append(side)
                    changed = True

        return {
            column.name.lower()
            for column in box.columns
            if column.expr is not None and expr_grounded(column.expr)
        }

    @staticmethod
    def _groupby_bound(box, facts) -> Set[str]:
        if not box.quantifiers:
            return set()
        input_box = box.quantifiers[0].input_box
        fact = facts.get(id(input_box), _EMPTY)
        out: Set[str] = set()
        for column in box.columns:
            expr = column.expr
            if expr is None or isinstance(expr, qe.QAggregate):
                continue
            refs = qe.column_refs(expr)
            if refs and all(ref.column.lower() in fact for ref in refs):
                out.add(column.name.lower())
        return out

    def _setop_bound(self, box, facts, require_all: bool) -> Set[str]:
        branch_facts = [
            self._positional_bound(box, quantifier, facts)
            for quantifier in box.quantifiers
        ]
        if not branch_facts:
            return set()
        out = set(branch_facts[0])
        for fact in branch_facts[1:]:
            if require_all:
                out &= fact
            else:
                out |= fact
        return out

    @staticmethod
    def _positional_bound(box, quantifier, facts) -> Set[str]:
        child = quantifier.input_box
        fact = facts.get(id(child), _EMPTY)
        child_names = [c.name.lower() for c in child.columns]
        out: Set[str] = set()
        for index, column in enumerate(box.columns):
            if index < len(child_names) and child_names[index] in fact:
                out.add(column.name.lower())
        return out

    @staticmethod
    def _outerjoin_bound(box, facts) -> Set[str]:
        if len(box.quantifiers) != 2:
            return set()
        left = box.quantifiers[0]
        fact = facts.get(id(left.input_box), _EMPTY)
        out: Set[str] = set()
        for column in box.columns:
            if column.expr is None:
                continue
            refs = qe.column_refs(column.expr)
            if refs and all(
                ref.quantifier is left and ref.column.lower() in fact
                for ref in refs
            ):
                out.add(column.name.lower())
        return out


def solve_bindings(root_box) -> Dict[int, BindFact]:
    """Solve binding propagation over everything reachable from ``root_box``."""
    return solve(BindingAnalysis(), [root_box])
