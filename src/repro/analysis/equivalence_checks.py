"""Chase-backed semantic diagnostics (codes ``QGM602``/``QGM603``/``QGM605``).

Where the ``QGM5xx`` dataflow pass audits what the *graph* claims, this
pass audits what the *catalog's dependencies* imply, by running the
chase-based equivalence machinery (:mod:`repro.analysis.equivalence`)
over each plain select box:

* ``QGM602`` — a join quantifier is semantically redundant: eliminating
  it yields a box the chase proves equivalent to the original (the same
  trial-elimination the generalized redundant-join rewrite rule
  performs, reported here instead of applied). Warning: the optimizer
  will remove it, but the query text carries a join that buys nothing.
* ``QGM603`` — an equality predicate is already implied by the box's
  other predicates plus the declared keys and foreign keys; the chase of
  the box *without* the predicate equates its two sides anyway. Info:
  harmless, but redundant.
* ``QGM605`` — a non-equality comparison (``<``, ``<=``, ``>``, ``>=``,
  ``<>``, or a desugared ``IN``) is already implied by the box's other
  interval facts under the interpreted comparison domain
  (:mod:`repro.analysis.equivalence.domains`) — e.g. ``x > 10`` next to
  ``x >= 20``. Info: harmless, but redundant. Unlike the two above this
  needs no declared dependencies, so it fires even on a bare catalog.

The trial eliminations clone the graph once per candidate pair, so the
``deep`` flag turns them off for the rewrite-soundness pipeline (which
re-runs its passes after every rule firing); there the pass still emits
``QGM603``, whose cost is one bounded chase per equality predicate.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Severity
from repro.analysis.framework import AnalysisContext, AnalysisPass, AnalysisReport
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind


class EquivalencePass(AnalysisPass):
    """Report dependency-implied redundancies the chase can prove."""

    name = "equivalence"

    def __init__(self, deep: bool = True, budget=None, max_pairs: int = 6):
        #: ``deep=False`` skips the per-pair trial eliminations (QGM602).
        self.deep = deep
        self.budget = budget
        #: Trial eliminations attempted per box (each clones the graph).
        self.max_pairs = max_pairs

    def run(self, context: AnalysisContext, report: AnalysisReport) -> None:
        checker = None
        if context.catalog is not None:
            from repro.analysis.equivalence import EquivalenceChecker

            checker = EquivalenceChecker(context.catalog, budget=self.budget)
            if checker.deps.is_empty():
                checker = None
        for box in context.boxes:
            if box.kind != BoxKind.SELECT or box.is_special:
                continue
            self._check_implied_comparisons(box, report)
            if checker is None:
                continue
            self._check_implied_predicates(box, checker, report)
            if self.deep:
                self._check_redundant_joins(box, context, checker, report)

    def _check_implied_comparisons(self, box, report) -> None:
        from repro.analysis.equivalence import domains

        for conjunct in domains.implied_comparisons(box.predicates):
            self.emit(
                report,
                "QGM605",
                Severity.INFO,
                "comparison %s is implied by the box's other interval "
                "facts" % conjunct,
                box=box,
                hint="the predicate can be dropped without changing results",
            )

    def _check_implied_predicates(self, box, checker, report) -> None:
        for predicate in box.predicates:
            sides = qe.equality_sides(predicate)
            if sides is None:
                continue
            left, right = sides
            if left.quantifier is right.quantifier and left.column == right.column:
                continue  # trivial self-equality, not worth a chase
            if checker.implied_equality(box, predicate):
                self.emit(
                    report,
                    "QGM603",
                    Severity.INFO,
                    "equality %s.%s = %s.%s is implied by the remaining "
                    "predicates and the declared dependencies"
                    % (
                        left.quantifier.name,
                        left.column,
                        right.quantifier.name,
                        right.column,
                    ),
                    box=box,
                    hint="the predicate can be dropped without changing results",
                )

    def _check_redundant_joins(self, box, context, checker, report) -> None:
        from repro.rewrite.redundant_join import RedundantJoinRule

        if len(box.foreach_quantifiers()) < 2:
            return
        rule = RedundantJoinRule()
        reported = set()
        trials = 0
        for keep, drop, mapping in rule._semantic_candidates(box, context):
            if drop.name in reported:
                continue
            if trials >= self.max_pairs:
                break
            trials += 1
            if rule._verify_elimination(box, context, checker, keep, drop, mapping):
                reported.add(drop.name)
                self.emit(
                    report,
                    "QGM602",
                    Severity.WARNING,
                    "joining %r is semantically redundant: the chase proves "
                    "the box equivalent without it (its columns are "
                    "available through %r)" % (drop.name, keep.name),
                    box=box,
                    quantifier=drop.name,
                    hint="the redundant-join rule will eliminate it",
                )


__all__ = ["EquivalencePass"]
