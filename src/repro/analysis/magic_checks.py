"""Magic/adornment well-formedness and stratification safety (``QGM4xx``).

These are the machine-checkable soundness conditions the magic-sets
rewrite must preserve (§4 of the paper, and the conditions Alviano et al.
make explicit for ontological magic sets):

* adornment strings are valid ``b``/``c``/``f`` words exactly as wide as
  the adorned box's output,
* magic boxes enforce DISTINCT unless duplicate-freeness is provable from
  derived keys (the relaxation the distinct-pullup rule is allowed to
  make),
* boxes whose operation is NMQ (groupby, set-ops, outer join — see
  :mod:`repro.magic.properties`) never receive an *inserted* magic
  quantifier; magic may only be linked and passed down,
* recursion is stratified: no aggregate and no anti-join edge inside a
  recursive strongly connected component.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Severity
from repro.analysis.framework import AnalysisContext, AnalysisPass, AnalysisReport
from repro.magic.adornment import _VALID as _VALID_ADORNMENT_LETTERS
from repro.magic.properties import has_operation, operation_properties
from repro.qgm.keys import is_duplicate_free
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType


class MagicWellFormednessPass(AnalysisPass):
    """Check the EMST-specific invariants of a (possibly rewritten) graph."""

    name = "magic"

    def run(self, context: AnalysisContext, report: AnalysisReport) -> None:
        for box in context.boxes:
            self._check_adornment(box, report)
            self._check_magic_distinct(box, report)
            self._check_nmq_insertion(box, report)
            self._check_stratification(context, box, report)

    def _check_adornment(self, box, report) -> None:
        if box.adornment is None:
            return
        bad = sorted({c for c in box.adornment if c not in _VALID_ADORNMENT_LETTERS})
        if bad:
            self.emit(
                report,
                "QGM402",
                Severity.ERROR,
                "box %r has invalid adornment letter(s) %s in %r"
                % (box.name, ", ".join(map(repr, bad)), str(box.adornment)),
                box=box,
                hint="adornments are words over b (bound), c (conditioned), f (free)",
            )
        if len(box.adornment) != len(box.columns):
            self.emit(
                report,
                "QGM401",
                Severity.ERROR,
                "box %r adornment %r has %d letters but the box has %d columns"
                % (box.name, str(box.adornment), len(box.adornment), len(box.columns)),
                box=box,
            )

    def _check_magic_distinct(self, box, report) -> None:
        if not box.is_magic_box:
            return
        if box.distinct == DistinctMode.ENFORCE:
            return
        if is_duplicate_free(box):
            return
        self.emit(
            report,
            "QGM403",
            Severity.WARNING,
            "magic box %r has distinct=%s but duplicate-freeness is not "
            "provable from its keys" % (box.name, box.distinct),
            box=box,
            hint="magic boxes are built with SELECT DISTINCT; only relax it "
            "when a key proves uniqueness",
        )

    def _check_nmq_insertion(self, box, report) -> None:
        if box.kind == BoxKind.BASE:
            return
        if not has_operation(box.kind):
            self.emit(
                report,
                "QGM405",
                Severity.WARNING,
                "box %r has kind %r with no registered EMST operation "
                "properties" % (box.name, box.kind),
                box=box,
                hint="customizers must call repro.magic.properties."
                "register_operation",
            )
            return
        if operation_properties(box.kind).amq:
            return
        for quantifier in box.quantifiers:
            if quantifier.is_magic:
                self.emit(
                    report,
                    "QGM404",
                    Severity.ERROR,
                    "NMQ box %r (kind %s) received an inserted magic "
                    "quantifier %r" % (box.name, box.kind, quantifier.name),
                    box=box,
                    quantifier=quantifier.name,
                    hint="NMQ operations may only *link* magic tables and "
                    "pass them down",
                )

    def _check_stratification(self, context, box, report) -> None:
        component = context.recursive_component_of(box)
        if component is None:
            return
        members = {id(member) for member in component}
        if box.kind == BoxKind.GROUPBY:
            self.emit(
                report,
                "QGM406",
                Severity.ERROR,
                "groupby box %r sits inside a recursive component "
                "(unstratified aggregation)" % box.name,
                box=box,
                hint="aggregates must be evaluated in a stratum above the "
                "recursion",
            )
        for quantifier in box.quantifiers:
            if (
                quantifier.qtype == QuantifierType.ANTI
                and id(quantifier.input_box) in members
            ):
                self.emit(
                    report,
                    "QGM407",
                    Severity.ERROR,
                    "anti quantifier %r of box %r ranges over box %r inside "
                    "the same recursive component (unstratified negation)"
                    % (quantifier.name, box.name, quantifier.input_box.name),
                    box=box,
                    quantifier=quantifier.name,
                )
