"""Static analysis over QGM graphs.

A pluggable pass framework (:mod:`repro.analysis.framework`) runs a
pipeline of passes over a query graph and collects structured
:class:`~repro.analysis.diagnostics.Diagnostic` records — stable codes,
severities, box-level locations, fix hints — instead of raising on the
first problem. Shipped passes:

* :class:`~repro.analysis.structural.StructuralPass` — every historical
  ``validate_graph`` invariant (``QGM1xx``),
* :class:`~repro.analysis.typecheck.TypeCheckPass` — type inference from
  catalog schemas and expression checking (``QGM2xx``),
* :class:`~repro.analysis.deadcode.DeadCodePass` — unreferenced boxes and
  output columns (``QGM3xx``),
* :class:`~repro.analysis.magic_checks.MagicWellFormednessPass` —
  adornment/magic/stratification soundness (``QGM4xx``).

:class:`~repro.analysis.soundness.SoundnessChecker` diffs analysis
reports across rewrite-rule firings and attributes every new diagnostic
to the rule that introduced it (wired into paranoid resilience mode).
``python -m repro.analysis.lint`` is the command-line linter.
"""

from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.framework import (
    AnalysisContext,
    AnalysisPass,
    Analyzer,
    analyze_graph,
    default_passes,
    register_pass,
    soundness_passes,
)
from repro.analysis.soundness import SoundnessChecker

__all__ = [
    "CODES",
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "Analyzer",
    "Diagnostic",
    "Severity",
    "SoundnessChecker",
    "analyze_graph",
    "default_passes",
    "register_pass",
    "soundness_passes",
]
