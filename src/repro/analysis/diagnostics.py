"""Structured diagnostics for QGM static analysis.

A :class:`Diagnostic` is one finding: a stable code (``QGM123``), a
severity, a message, and a *location* — the box (always), plus optionally
the quantifier and column involved. An :class:`AnalysisReport` is the
ordered collection produced by one :class:`~repro.analysis.framework.
Analyzer` run; unlike :func:`~repro.qgm.validate.validate_graph` it never
raises, so a single run surfaces every problem in the graph.

Diagnostic codes are allocated in blocks by pass:

* ``QGM1xx`` — structural invariants (:mod:`repro.analysis.structural`)
* ``QGM2xx`` — type inference/checking (:mod:`repro.analysis.typecheck`)
* ``QGM3xx`` — dead code (:mod:`repro.analysis.deadcode`)
* ``QGM4xx`` — magic/adornment well-formedness and stratification
  (:mod:`repro.analysis.magic_checks`)
* ``QGM5xx`` — interbox dataflow facts: adornment justification,
  redundant DISTINCT, nullability (:mod:`repro.analysis.dataflow_checks`)
* ``QGM6xx`` — chase-based semantic equivalence: translation-validation
  refutations and dependency-implied redundancies
  (:mod:`repro.analysis.equivalence`,
  :mod:`repro.analysis.equivalence_checks`)

``CODES`` is the authoritative registry: every emitted code must appear
there (the framework enforces it), and ``docs/diagnostics.md`` documents
each entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class Severity:
    """Diagnostic severities, ordered: ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER.get(severity, 99)


#: code -> one-line title. The single source of truth for which codes
#: exist; ``docs/diagnostics.md`` and the tests cross-check against it.
CODES: Dict[str, str] = {
    # -- structural (QGM1xx) --------------------------------------------------
    "QGM101": "box has an invalid distinct mode",
    "QGM102": "quantifier has a wrong parent link",
    "QGM103": "quantifier ranges over an unreachable box",
    "QGM104": "invalid quantifier type",
    "QGM105": "box has duplicate quantifier names",
    "QGM106": "base box must not have quantifiers",
    "QGM107": "base box lacks a schema",
    "QGM108": "groupby box must have exactly one foreach quantifier",
    "QGM109": "groupby box must not carry predicates",
    "QGM110": "groupby output column lacks an expression",
    "QGM111": "groupby output column is neither a group key nor an aggregate",
    "QGM112": "set-op box must not carry predicates",
    "QGM113": "set-op box has the wrong number of inputs",
    "QGM114": "set-op box may only have foreach quantifiers",
    "QGM115": "set-op input arity disagrees with the box's own column list",
    "QGM116": "set-op columns are positional and must not carry expressions",
    "QGM117": "outer-join box must have exactly two inputs",
    "QGM118": "outer-join box may only have foreach quantifiers",
    "QGM119": "outer-join output column lacks an expression",
    "QGM120": "select output column lacks an expression",
    "QGM121": "expression references a dangling quantifier",
    "QGM122": "expression references a column its quantifier does not produce",
    "QGM123": "aggregate found outside a groupby box",
    "QGM199": "structural check crashed on a malformed box",
    # -- types (QGM2xx) -------------------------------------------------------
    "QGM201": "comparison of incompatible types",
    "QGM202": "numeric aggregate over a non-numeric column",
    "QGM203": "set-op branches have mismatched column types",
    "QGM204": "arithmetic on a non-numeric operand",
    "QGM205": "LIKE over a non-string operand",
    # -- dead code (QGM3xx) ---------------------------------------------------
    "QGM301": "box is never referenced by any quantifier",
    "QGM302": "output column is never referenced by any consumer",
    # -- magic / stratification (QGM4xx) --------------------------------------
    "QGM401": "adornment length disagrees with the box's column count",
    "QGM402": "adornment contains an invalid letter",
    "QGM403": "magic box neither enforces DISTINCT nor is provably duplicate-free",
    "QGM404": "magic quantifier inserted into an NMQ box",
    "QGM405": "box kind has no registered EMST operation properties",
    "QGM406": "aggregate (groupby box) inside a recursive component",
    "QGM407": "anti-join edge inside a recursive component",
    # -- interbox dataflow (QGM5xx) -------------------------------------------
    "QGM501": "adornment claims a binding no dataflow path justifies",
    "QGM502": "DISTINCT enforcement is provably redundant",
    "QGM503": "output column is NULL in every row",
    # -- semantic equivalence (QGM6xx) -----------------------------------------
    "QGM601": "rewrite firing refuted by chase-based translation validation",
    "QGM602": "join is semantically redundant under the declared dependencies",
    "QGM603": "predicate is implied by the declared dependencies",
    "QGM604": "box predicates are contradictory; the box is provably empty",
    "QGM605": "comparison predicate is implied by the other interval facts",
}


@dataclass
class Diagnostic:
    """One analysis finding, locatable down to box/quantifier/column."""

    code: str
    severity: str
    message: str
    box: Optional[str] = None
    box_id: Optional[int] = None
    quantifier: Optional[str] = None
    column: Optional[str] = None
    hint: Optional[str] = None
    pass_name: Optional[str] = None
    #: The rewrite rule this diagnostic is attributed to (set by the
    #: soundness checker when a rule firing introduced it).
    rule: Optional[str] = None

    @property
    def location(self) -> str:
        """Human-readable location, always naming the box."""
        if self.box is None:
            return "<graph>"
        where = "box %r" % self.box
        if self.box_id is not None and self.box_id >= 0:
            where += " #%d" % self.box_id
        if self.quantifier is not None:
            where += " quantifier %r" % self.quantifier
        if self.column is not None:
            where += " column %r" % self.column
        return where

    def key(self) -> Tuple:
        """Identity used by the soundness checker to diff reports across
        rule firings. Box *names* are stable under rollback (ids are
        preserved by the clone machinery) so they anchor the diff."""
        return (self.code, self.box, self.quantifier, self.column, self.message)

    def render(self) -> str:
        text = "%s %s [%s] %s" % (self.severity, self.code, self.location, self.message)
        if self.hint:
            text += " (hint: %s)" % self.hint
        return text

    def __str__(self) -> str:
        return self.render()


@dataclass
class AnalysisReport:
    """Every diagnostic one analyzer run produced, in emission order."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: pass name -> wall-clock seconds, for observability.
    pass_seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered by severity, then code, then location."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                Severity.rank(d.severity),
                d.code,
                d.box_id if d.box_id is not None else -1,
                d.box or "",
            ),
        )

    def summary(self) -> str:
        return "%d error(s), %d warning(s), %d info" % (
            len(self.errors),
            len(self.warnings),
            len(self.infos),
        )

    def counts(self) -> Dict[str, int]:
        """Severity -> count, for stats dictionaries."""
        return {
            Severity.ERROR: len(self.errors),
            Severity.WARNING: len(self.warnings),
            Severity.INFO: len(self.infos),
        }

    def render(self) -> str:
        lines = [d.render() for d in self.sorted()]
        lines.append(self.summary())
        return "\n".join(lines)
