"""Chase-based semantic equivalence checking.

The rewrite engine's soundness story used to rest on *structural*
analysis diffs: a rule that produced a well-formed but semantically wrong
graph slipped through. This package decides **semantic** equivalence of
conjunctive QGM regions the classical way ("Equivalence of SQL Queries in
Presence of Embedded Dependencies", arXiv 0812.2195):

1. canonicalize SELECT boxes (and DISTINCT/UNION compositions of them)
   into *tableaux* — conjunctive queries over the base tables
   (:mod:`.tableau`),
2. collect the embedded dependencies the catalog declares — functional
   dependencies from PRIMARY KEY / UNIQUE, inclusion dependencies from
   FOREIGN KEY (:mod:`.dependencies`),
3. *chase* each tableau to fixpoint with those dependencies
   (:mod:`.chase`), and
4. decide containment both ways by budgeted homomorphism search
   (:mod:`.containment`), returning one of the three verdicts
   ``VERIFIED`` / ``REFUTED`` / ``UNKNOWN`` (:mod:`.checker`).

Every step is deterministic and budget-bounded, so a verdict is a pure
function of (graph, catalog, budget). ``UNKNOWN`` is always a safe
answer; ``REFUTED`` comes with a frozen counterexample database.
"""

from repro.analysis.equivalence.chase import ChaseBudget, chase
from repro.analysis.equivalence.checker import (
    REFUTED,
    UNKNOWN,
    VERIFIED,
    EquivalenceChecker,
    EquivalenceVerdict,
)
from repro.analysis.equivalence.dependencies import (
    DependencySet,
    FunctionalDependency,
    InclusionDependency,
    dependencies_from_catalog,
)
from repro.analysis.equivalence.reasons import ALL_REASON_CODES, Reason
from repro.analysis.equivalence.scope import scoped_verdict
from repro.analysis.equivalence.tableau import (
    AggregateSpec,
    CannotCanonicalize,
    CanonicalQuery,
    Tableau,
    canonicalize_box,
    canonicalize_graph,
)

__all__ = [
    "ALL_REASON_CODES",
    "AggregateSpec",
    "ChaseBudget",
    "CannotCanonicalize",
    "CanonicalQuery",
    "DependencySet",
    "EquivalenceChecker",
    "EquivalenceVerdict",
    "FunctionalDependency",
    "InclusionDependency",
    "REFUTED",
    "Reason",
    "Tableau",
    "UNKNOWN",
    "VERIFIED",
    "canonicalize_box",
    "canonicalize_graph",
    "chase",
    "dependencies_from_catalog",
    "scoped_verdict",
]
