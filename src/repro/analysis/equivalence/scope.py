"""Scoped (region-cut) translation validation.

Whole-graph canonicalization bails on any graph containing a magic
region, which makes every EMST-era firing UNKNOWN even when the rewrite
only touched a small self-contained subtree. This module rescues those
verdicts: diff the before/after graphs box-by-box (boxes keep their
``box_id`` across the pre-firing snapshot), find the smallest common
enclosing box whose quantifier-reachable region contains every change,
and compare just that region as a standalone query with
``allow_special=True`` (magic and supplementary boxes canonicalize like
ordinary ones there).

Soundness: if region R (rooted at box b, same ``box_id`` on both sides)
satisfies

* every changed, added, or removed box lies inside R,
* no box outside R ranges over a box of R other than b itself, and
* b exposes the same output columns (names, order) on both sides,

then the rest of the graph is structurally identical and consumes the
region only through b's output — so equivalence of the two regions as
standalone queries implies equivalence of the whole graphs. A *bag*
verdict on the region is required unless the region is duplicate-free,
and the graph must carry no LIMIT (a bag-equal region under LIMIT could
still change which rows survive; ORDER BY alone is presentation-order
and row-set-preserving).

A scoped REFUTED is **not** propagated: inequivalence of one region does
not imply inequivalence of the graphs (the region may be dead or
semantically constrained by its inputs), and a false REFUTED would roll
back a sound firing. Scoped validation only ever upgrades UNKNOWN to
VERIFIED.
"""

from __future__ import annotations

from repro.analysis.equivalence.checker import VERIFIED, EquivalenceVerdict
from repro.analysis.equivalence.reasons import Reason


def _box_fingerprint(box):
    """Deterministic structural identity of one box (children by box_id)."""
    return (
        box.kind,
        box.distinct,
        tuple((column.name, repr(column.expr)) for column in box.columns),
        tuple(
            (
                quantifier.qtype,
                quantifier.is_magic,
                getattr(quantifier, "decorrelated", False),
                tuple(repr(p) for p in quantifier.selector_predicates),
                quantifier.input_box.box_id,
            )
            for quantifier in box.quantifiers
        ),
        tuple(sorted(repr(p) for p in box.predicates)),
        tuple(repr(key) for key in box.group_keys),
        box.table_name,
        box.magic_role,
        box.adornment,
        tuple(sorted((k, repr(v)) for k, v in box.properties.items())),
        tuple(sorted(m.box_id for m in box.linked_magic)),
    )


def _reachable_ids(box):
    """box_ids quantifier-reachable from ``box`` (inclusive)."""
    seen = set()
    stack = [box]
    while stack:
        current = stack.pop()
        if current.box_id in seen:
            continue
        seen.add(current.box_id)
        for quantifier in current.quantifiers:
            stack.append(quantifier.input_box)
    return seen


def _region_is_closed(graph, region, root_id):
    """No box outside ``region`` ranges over a region box except the root."""
    inner = region - {root_id}
    for box in graph.boxes():
        if box.box_id in region:
            continue
        for quantifier in box.quantifiers:
            if quantifier.input_box.box_id in inner:
                return False
    return True


def scoped_verdict(checker, before, after):
    """Try to verify a firing by validating only the changed region.

    ``before``/``after`` are whole query graphs; returns a VERIFIED
    :class:`EquivalenceVerdict` (reason ``verified:scoped-region`` or
    ``verified:unchanged``) or None when no enclosing region verifies.
    """
    if before.limit is not None or after.limit is not None:
        return None
    if list(before.order_by) != list(after.order_by):
        return None

    before_map = {box.box_id: box for box in before.boxes()}
    after_map = {box.box_id: box for box in after.boxes()}

    changed = set()
    for box_id in set(before_map) | set(after_map):
        left = before_map.get(box_id)
        right = after_map.get(box_id)
        if left is None or right is None:
            changed.add(box_id)
        elif _box_fingerprint(left) != _box_fingerprint(right):
            changed.add(box_id)
    if not changed:
        return EquivalenceVerdict(
            VERIFIED,
            "the firing left the graph structurally unchanged",
            bag=True,
            reason_code=Reason.VERIFIED_UNCHANGED,
        )

    candidates = []
    for box_id in set(before_map) & set(after_map):
        before_root = before_map[box_id]
        after_root = after_map[box_id]
        if [c.name.lower() for c in before_root.columns] != [
            c.name.lower() for c in after_root.columns
        ]:
            continue
        before_region = _reachable_ids(before_root)
        after_region = _reachable_ids(after_root)
        if not (changed & set(before_map)) <= before_region:
            continue
        if not (changed & set(after_map)) <= after_region:
            continue
        if not _region_is_closed(before, before_region, box_id):
            continue
        if not _region_is_closed(after, after_region, box_id):
            continue
        candidates.append(
            (len(before_region) + len(after_region), box_id, before_root, after_root)
        )

    # Smallest enclosing region first: cheaper and more likely in-fragment.
    candidates.sort(key=lambda item: (item[0], item[1]))
    for _, _, before_root, after_root in candidates:
        verdict = checker._check_canonicalizable(
            before_root, after_root, whole_graph=False, allow_special=True
        )
        if verdict.status != VERIFIED:
            continue
        # Any VERIFIED region verdict is bag-safe to substitute: the bag
        # route proves multiset equality directly, and the set route only
        # fires for provably duplicate-free sides, where set equality of
        # the outputs *is* bag equality.
        return EquivalenceVerdict(
            VERIFIED,
            "changed region at box %r verified standalone: %s"
            % (before_root.name, verdict.detail),
            bag=verdict.bag,
            reason_code=Reason.VERIFIED_SCOPED,
        )
    return None


__all__ = ["scoped_verdict"]
