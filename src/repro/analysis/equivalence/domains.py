"""Interpreted comparison domain: ordering/interval reasoning.

The chase machinery treats most predicates as uninterpreted builtins, but
the comparison family — ``<, <=, =, <>, >, >=`` plus the desugared forms
of ``BETWEEN`` (a ``>=``/``<=`` pair) and ``IN`` (an OR-chain of
equalities) — has decidable structure worth interpreting:

* **implication** — containment no longer demands syntactic builtin
  equality: a tableau constrained by ``x > 100`` maps into one
  constrained by ``x >= 100`` (see
  :mod:`repro.analysis.equivalence.containment`);
* **unsatisfiability** — contradictory ranges (``x < 3 AND x > 7``)
  prove a block empty, which the checker turns into a verified-empty
  disjunct and the dead-code pass surfaces as ``QGM604``.

The abstract element per term is an interval with strict/inclusive end
points, an optional finite *allowed* set (from ``IN``), and an excluded
set (from ``<>``); term-to-term ordering edges are closed transitively
and propagate constant bounds. Everything here is deliberately
conservative: ``implies`` returns ``False`` and ``unsatisfiable`` stays
``False`` whenever values are incomparable (mixed type families, NULL)
or a fact does not fit the domain — never the unsound direction.

Two client layers share the machinery:

* the tableau layer stores :class:`Cmp` facts whose sides are tableau
  terms (:class:`Val` wraps constants);
* :func:`facts_from_predicates` lifts the same reasoning to raw QGM
  predicates, keyed by ``(id(quantifier), column)`` — that is what
  ``deadcode.py`` (QGM604), ``equivalence_checks.py`` (QGM605) and the
  :class:`~repro.optimizer.cardinality.CardinalityEstimator` consume
  without canonicalizing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.qgm import expr as qe

#: Sentinel distinct from every value (including None).
_NO_VALUE = object()


@dataclass(frozen=True)
class Val:
    """A constant operand of a comparison (``None`` is SQL NULL)."""

    value: object

    def __repr__(self):
        return "v(%r)" % (self.value,)


@dataclass(frozen=True)
class Cmp:
    """One normalized comparison fact.

    ``op`` is one of ``<``, ``<=``, ``<>`` or ``in``. ``>``/``>=`` are
    normalized away by swapping sides. For ``in``, ``right`` is a tuple
    of plain (hashable) values, not terms.
    """

    op: str
    left: object
    right: object

    def __repr__(self):
        return "{%r %s %r}" % (self.left, self.op, self.right)


def _family(value):
    """Type family for comparability ('num', 'str', or None)."""
    if isinstance(value, bool):
        return "num"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


def _compare(left, right):
    """-1/0/1 when comparable, None otherwise (NULL, mixed families)."""
    if left is None or right is None:
        return None
    fam = _family(left)
    if fam is None or fam != _family(right):
        return None
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def comparison_cmps(op, left, right):
    """Normalize a binary comparison into :class:`Cmp` facts, or None
    when ``op`` is not an order/inequality comparison."""
    if op == "<":
        return [Cmp("<", left, right)]
    if op == ">":
        return [Cmp("<", right, left)]
    if op == "<=":
        return [Cmp("<=", left, right)]
    if op == ">=":
        return [Cmp("<=", right, left)]
    if op in ("<>", "!="):
        return [Cmp("<>", left, right)]
    return None


# ---------------------------------------------------------------------------
# Per-term abstract element
# ---------------------------------------------------------------------------


class _Range:
    """Interval + finite allowed set + excluded values for one term."""

    __slots__ = ("lo", "lo_strict", "hi", "hi_strict", "allowed", "excluded")

    def __init__(self):
        self.lo = _NO_VALUE
        self.lo_strict = False
        self.hi = _NO_VALUE
        self.hi_strict = False
        self.allowed: Optional[Set] = None
        self.excluded: Set = set()

    # -- tightening (conservative: incomparable facts are dropped) ----------

    def tighten_lo(self, value, strict):
        if self.lo is _NO_VALUE:
            self.lo, self.lo_strict = value, strict
            return True
        order = _compare(value, self.lo)
        if order is None:
            return False
        if order > 0 or (order == 0 and strict and not self.lo_strict):
            self.lo, self.lo_strict = value, strict or (
                order == 0 and self.lo_strict
            )
            return True
        return False

    def tighten_hi(self, value, strict):
        if self.hi is _NO_VALUE:
            self.hi, self.hi_strict = value, strict
            return True
        order = _compare(value, self.hi)
        if order is None:
            return False
        if order < 0 or (order == 0 and strict and not self.hi_strict):
            self.hi, self.hi_strict = value, strict or (
                order == 0 and self.hi_strict
            )
            return True
        return False

    def restrict_allowed(self, values):
        if self.allowed is None:
            self.allowed = set(values)
        else:
            self.allowed &= set(values)

    def exclude(self, value):
        self.excluded.add(value)

    # -- queries ------------------------------------------------------------

    def _in_bounds(self, value):
        """False only when the bounds *provably* exclude ``value``."""
        if self.lo is not _NO_VALUE:
            order = _compare(value, self.lo)
            if order is not None and (order < 0 or (order == 0 and self.lo_strict)):
                return False
        if self.hi is not _NO_VALUE:
            order = _compare(value, self.hi)
            if order is not None and (order > 0 or (order == 0 and self.hi_strict)):
                return False
        return True

    def effective_allowed(self) -> Optional[FrozenSet]:
        if self.allowed is None:
            return None
        return frozenset(
            value
            for value in self.allowed
            if value not in self.excluded and self._in_bounds(value)
        )

    def empty(self):
        effective = self.effective_allowed()
        if effective is not None:
            return not effective
        if self.lo is not _NO_VALUE and self.hi is not _NO_VALUE:
            order = _compare(self.lo, self.hi)
            if order is not None:
                if order > 0:
                    return True
                if order == 0 and (self.lo_strict or self.hi_strict):
                    return True
                if order == 0 and self.lo in self.excluded:
                    return True
        return False

    def pinned(self):
        """The single value this range admits, or the sentinel."""
        effective = self.effective_allowed()
        if effective is not None:
            if len(effective) == 1:
                return next(iter(effective))
            return _NO_VALUE
        if (
            self.lo is not _NO_VALUE
            and self.hi is not _NO_VALUE
            and not self.lo_strict
            and not self.hi_strict
            and _compare(self.lo, self.hi) == 0
            and self.lo not in self.excluded
        ):
            return self.lo
        return _NO_VALUE

    def always_lt(self, value, or_equal=False):
        """Every admitted x satisfies ``x < value`` (or ``<=``)."""
        effective = self.effective_allowed()
        if effective is not None:
            return all(
                (lambda o: o is not None and (o < 0 or (o == 0 and or_equal)))(
                    _compare(v, value)
                )
                for v in effective
            )
        if self.hi is _NO_VALUE:
            return False
        order = _compare(self.hi, value)
        if order is None:
            return False
        if order < 0:
            return True
        return order == 0 and (self.hi_strict or or_equal)

    def always_gt(self, value, or_equal=False):
        """Every admitted x satisfies ``x > value`` (or ``>=``)."""
        effective = self.effective_allowed()
        if effective is not None:
            return all(
                (lambda o: o is not None and (o > 0 or (o == 0 and or_equal)))(
                    _compare(v, value)
                )
                for v in effective
            )
        if self.lo is _NO_VALUE:
            return False
        order = _compare(self.lo, value)
        if order is None:
            return False
        if order > 0:
            return True
        return order == 0 and (self.lo_strict or or_equal)

    def never_equals(self, value):
        effective = self.effective_allowed()
        if effective is not None:
            return value not in effective
        if value in self.excluded:
            return True
        return self.always_lt(value) or self.always_gt(value)

    def subset_of(self, values):
        effective = self.effective_allowed()
        if effective is not None:
            return effective <= set(values)
        pin = self.pinned()
        return pin is not _NO_VALUE and pin in set(values)


# ---------------------------------------------------------------------------
# The system: many terms, ordering edges, closure
# ---------------------------------------------------------------------------


class ComparisonSystem:
    """A conjunction of :class:`Cmp` facts with decision helpers."""

    #: Safety cap on closure iterations (each pass only tightens).
    _MAX_PASSES = 32

    def __init__(self):
        self._ranges: Dict[object, _Range] = {}
        self._edges: Dict[Tuple[object, object], bool] = {}  # (a,b) -> strict: a<b
        self._neq: Set[FrozenSet] = set()
        self._unsat = False
        self._solved = False

    # -- construction -------------------------------------------------------

    def _range(self, term) -> _Range:
        rng = self._ranges.get(term)
        if rng is None:
            rng = self._ranges[term] = _Range()
        return rng

    def add(self, cmp: Cmp):
        self._solved = False
        op, left, right = cmp.op, cmp.left, cmp.right
        if op == "in":
            values = tuple(v for v in right if v is not None)
            if isinstance(left, Val):
                if left.value is None or left.value not in values:
                    self._unsat = True
                return
            if not values:
                self._unsat = True
                return
            self._range(left).restrict_allowed(values)
            return
        lconst = isinstance(left, Val)
        rconst = isinstance(right, Val)
        if (lconst and left.value is None) or (rconst and right.value is None):
            # A comparison with NULL is never true: the conjunction is empty.
            self._unsat = True
            return
        if op in ("<", "<="):
            strict = op == "<"
            if lconst and rconst:
                order = _compare(left.value, right.value)
                if order is not None and (order > 0 or (order == 0 and strict)):
                    self._unsat = True
                return
            if lconst:
                self._range(right).tighten_lo(left.value, strict)
                return
            if rconst:
                self._range(left).tighten_hi(right.value, strict)
                return
            if left == right:
                if strict:
                    self._unsat = True
                return
            key = (left, right)
            self._edges[key] = self._edges.get(key, False) or strict
            return
        if op == "<>":
            if lconst and rconst:
                if left.value == right.value:
                    self._unsat = True
                return
            if lconst:
                self._range(right).exclude(left.value)
                return
            if rconst:
                self._range(left).exclude(right.value)
                return
            if left == right:
                self._unsat = True
                return
            self._neq.add(frozenset((left, right)))

    # -- closure -------------------------------------------------------------

    def _solve(self):
        if self._solved:
            return
        self._solved = True
        if self._unsat:
            return
        # Transitive closure of the ordering edges (strictness ORs through).
        terms = set()
        for a, b in self._edges:
            terms.add(a)
            terms.add(b)
        changed = True
        while changed:
            changed = False
            for (a, b), s1 in list(self._edges.items()):
                for (c, d), s2 in list(self._edges.items()):
                    if b != c:
                        continue
                    strict = s1 or s2
                    prior = self._edges.get((a, d))
                    if prior is None or (strict and not prior):
                        self._edges[(a, d)] = strict
                        changed = True
        # Constant-bound propagation along edges, to fixpoint.
        for _ in range(self._MAX_PASSES):
            moved = False
            for (a, b), strict in self._edges.items():
                ra, rb = self._range(a), self._range(b)
                if rb.hi is not _NO_VALUE:
                    moved |= ra.tighten_hi(rb.hi, strict or rb.hi_strict)
                if ra.lo is not _NO_VALUE:
                    moved |= rb.tighten_lo(ra.lo, strict or ra.lo_strict)
            if not moved:
                break
        # Contradictions.
        for (a, b), strict in self._edges.items():
            if a == b and strict:
                self._unsat = True
                return
        for rng in self._ranges.values():
            if rng.empty():
                self._unsat = True
                return
        for pair in self._neq:
            if len(pair) != 2:
                continue
            a, b = tuple(pair)
            pa = self._range(a).pinned() if a in self._ranges else _NO_VALUE
            pb = self._range(b).pinned() if b in self._ranges else _NO_VALUE
            if pa is not _NO_VALUE and pa == pb:
                self._unsat = True
                return

    # -- queries --------------------------------------------------------------

    def unsatisfiable(self):
        self._solve()
        return self._unsat

    def _lookup(self, term) -> _Range:
        return self._ranges.get(term) or _Range()

    def implies(self, cmp: Cmp) -> bool:
        """Does this conjunction entail ``cmp``? (False = don't know.)"""
        self._solve()
        if self._unsat:
            return True
        op, left, right = cmp.op, cmp.left, cmp.right
        if op == "in":
            values = tuple(v for v in right if v is not None)
            if isinstance(left, Val):
                return left.value is not None and left.value in values
            return self._lookup(left).subset_of(values)
        lconst = isinstance(left, Val)
        rconst = isinstance(right, Val)
        if (lconst and left.value is None) or (rconst and right.value is None):
            return False
        if op in ("<", "<="):
            or_equal = op == "<="
            if lconst and rconst:
                order = _compare(left.value, right.value)
                return order is not None and (
                    order < 0 or (order == 0 and or_equal)
                )
            if lconst:
                return self._lookup(right).always_gt(left.value, or_equal)
            if rconst:
                return self._lookup(left).always_lt(right.value, or_equal)
            if left == right:
                return or_equal
            edge = self._edges.get((left, right))
            if edge is not None and (or_equal or edge):
                return True
            return self._separated(left, right, or_equal)
        if op == "<>":
            if lconst and rconst:
                return left.value != right.value
            if lconst:
                return self._lookup(right).never_equals(left.value)
            if rconst:
                return self._lookup(left).never_equals(right.value)
            if left == right:
                return False
            if frozenset((left, right)) in self._neq:
                return True
            if self._edges.get((left, right)) or self._edges.get((right, left)):
                return True
            return self._separated(left, right, False) or self._separated(
                right, left, False
            )
        if op == "=":
            if lconst and rconst:
                return (
                    left.value is not None
                    and _compare(left.value, right.value) == 0
                )
            if lconst or rconst:
                value = left.value if lconst else right.value
                term = right if lconst else left
                pin = self._lookup(term).pinned()
                return pin is not _NO_VALUE and _compare(pin, value) == 0
            return left == right
        return False

    def _separated(self, left, right, or_equal):
        """left's upper bound sits below right's lower bound."""
        rl, rr = self._lookup(left), self._lookup(right)
        if rl.hi is _NO_VALUE or rr.lo is _NO_VALUE:
            return False
        order = _compare(rl.hi, rr.lo)
        if order is None:
            return False
        if order < 0:
            return True
        return order == 0 and (rl.hi_strict or rr.lo_strict or or_equal)


def system_of(cmps: Iterable[Cmp]) -> ComparisonSystem:
    system = ComparisonSystem()
    for cmp in cmps:
        system.add(cmp)
    return system


def normalize_cmps(cmps: Iterable[Cmp]):
    """Evaluate constant-only facts and deduplicate.

    Returns ``(kept, unsat)`` — ``kept`` drops facts that are trivially
    true and keeps everything else in first-seen order; ``unsat`` is True
    when some fact is provably false (including comparisons with NULL).
    """
    kept = {}
    unsat = False
    for cmp in cmps:
        op, left, right = cmp.op, cmp.left, cmp.right
        if op == "in":
            values = tuple(v for v in right if v is not None)
            if isinstance(left, Val):
                if left.value is None or left.value not in values:
                    unsat = True
                continue
            if not values:
                unsat = True
                continue
            kept.setdefault(Cmp("in", left, values))
            continue
        lconst = isinstance(left, Val)
        rconst = isinstance(right, Val)
        if (lconst and left.value is None) or (rconst and right.value is None):
            unsat = True
            continue
        if lconst and rconst:
            order = _compare(left.value, right.value)
            if order is None:
                if op == "<>" and left.value != right.value:
                    continue  # cross-family values are simply unequal
                kept.setdefault(cmp)
                continue
            holds = (
                order < 0
                if op == "<"
                else order <= 0
                if op == "<="
                else order != 0
            )
            if not holds:
                unsat = True
            continue
        if left == right and not lconst:
            if op == "<=":
                continue
            unsat = True
            continue
        kept.setdefault(cmp)
    return tuple(kept), unsat


# ---------------------------------------------------------------------------
# QGM-predicate layer
# ---------------------------------------------------------------------------


def membership(conjunct):
    """Recognize the desugared ``IN`` form: an OR-chain of equalities of
    one common operand against literals. Returns ``(operand, values)`` or
    None."""
    if not (isinstance(conjunct, qe.QBinary) and conjunct.op == "OR"):
        return None
    arms: List[qe.QExpr] = []
    stack = [conjunct]
    while stack:
        node = stack.pop()
        if isinstance(node, qe.QBinary) and node.op == "OR":
            stack.append(node.left)
            stack.append(node.right)
        else:
            arms.append(node)
    operand = None
    values = []
    for arm in arms:
        if not (isinstance(arm, qe.QBinary) and arm.op == "="):
            return None
        if isinstance(arm.right, qe.QLiteral):
            side, literal = arm.left, arm.right
        elif isinstance(arm.left, qe.QLiteral):
            side, literal = arm.right, arm.left
        else:
            return None
        if operand is None:
            operand = side
        elif not qe.expr_equal(operand, side):
            return None
        values.append(literal.value)
    if operand is None:
        return None
    return operand, tuple(values)


class PredicateFacts:
    """Interval facts over the simple conjuncts of QGM predicates.

    Terms are ``(id(quantifier), lowered column)`` keys; simple
    equalities fold through a union-find (constants win) exactly like
    tableau canonicalization, so ``a.x = b.y AND b.y > 3`` constrains
    both columns.
    """

    def __init__(self):
        self.system = ComparisonSystem()
        self._parent: Dict[object, object] = {}
        self._contradiction = False
        self._raw: List[Cmp] = []

    # -- union-find (Val representatives win) -------------------------------

    def _find(self, term):
        root = term
        while root in self._parent:
            root = self._parent[root]
        while term in self._parent:
            self._parent[term], term = root, self._parent[term]
        return root

    def _union(self, left, right):
        left, right = self._find(left), self._find(right)
        if left == right:
            return
        if isinstance(left, Val) and isinstance(right, Val):
            if left.value != right.value:
                self._contradiction = True
            return
        if isinstance(right, Val):
            left, right = right, left
        self._parent[right] = left

    # -- construction --------------------------------------------------------

    @staticmethod
    def _simple(expr):
        if isinstance(expr, qe.QColRef):
            return (id(expr.quantifier), expr.column.lower())
        if isinstance(expr, qe.QLiteral):
            return Val(expr.value)
        return None

    def absorb(self, conjunct):
        if isinstance(conjunct, qe.QBinary) and conjunct.op == "=":
            left = self._simple(conjunct.left)
            right = self._simple(conjunct.right)
            if left is None or right is None:
                return
            if (isinstance(left, Val) and left.value is None) or (
                isinstance(right, Val) and right.value is None
            ):
                self._contradiction = True
                return
            self._union(left, right)
            return
        for cmp in self._conjunct_cmps(conjunct) or ():
            self._raw.append(cmp)

    def _conjunct_cmps(self, conjunct):
        """Parse one conjunct into raw :class:`Cmp` facts (or None)."""
        if isinstance(conjunct, qe.QBinary) and conjunct.op in (
            "<", "<=", ">", ">=", "<>", "!=",
        ):
            left = self._simple(conjunct.left)
            right = self._simple(conjunct.right)
            if left is None or right is None:
                return None
            return comparison_cmps(conjunct.op, left, right)
        member = membership(conjunct)
        if member is not None:
            operand, values = member
            side = self._simple(operand)
            if side is None:
                return None
            return [Cmp("in", side, values)]
        return None

    def _resolved(self, cmp):
        if cmp.op == "in":
            return Cmp("in", self._find(cmp.left), cmp.right)
        return Cmp(cmp.op, self._find(cmp.left), self._find(cmp.right))

    def seal(self):
        for cmp in self._raw:
            self.system.add(self._resolved(cmp))
        self._raw = []
        return self

    # -- queries --------------------------------------------------------------

    @property
    def unsatisfiable(self):
        return self._contradiction or self.system.unsatisfiable()

    def implies(self, conjunct) -> Optional[bool]:
        """True/False when ``conjunct`` is an interval-domain conjunct,
        None when it is out of domain (not a simple comparison)."""
        cmps = self._conjunct_cmps(conjunct)
        if cmps is None:
            return None
        return all(self.system.implies(self._resolved(cmp)) for cmp in cmps)


def facts_from_conjuncts(conjuncts) -> PredicateFacts:
    facts = PredicateFacts()
    for conjunct in conjuncts:
        facts.absorb(conjunct)
    return facts.seal()


def facts_from_predicates(predicates) -> PredicateFacts:
    return facts_from_conjuncts(
        [c for p in predicates for c in qe.conjuncts(p)]
    )


def predicates_unsatisfiable(predicates) -> bool:
    """True when the conjunction of ``predicates`` provably admits no
    row (contradictory ranges / memberships / equalities)."""
    return facts_from_predicates(predicates).unsatisfiable


def is_interval_conjunct(conjunct) -> bool:
    """A non-equality comparison or a desugared IN — the conjuncts the
    QGM605 implied-comparison diagnostic considers."""
    if isinstance(conjunct, qe.QBinary) and conjunct.op in (
        "<", "<=", ">", ">=", "<>", "!=",
    ):
        return True
    return membership(conjunct) is not None


def implied_comparisons(predicates):
    """Conjuncts of ``predicates`` that are non-equality comparisons
    already implied by the *other* conjuncts' interval facts."""
    all_conjuncts = [c for p in predicates for c in qe.conjuncts(p)]
    implied = []
    for index, conjunct in enumerate(all_conjuncts):
        if not is_interval_conjunct(conjunct):
            continue
        rest = all_conjuncts[:index] + all_conjuncts[index + 1:]
        facts = facts_from_conjuncts(rest)
        if facts.unsatisfiable:
            continue  # QGM604 territory: the box is empty, not redundant
        if facts.implies(conjunct):
            implied.append(conjunct)
    return implied


__all__ = [
    "Cmp",
    "ComparisonSystem",
    "PredicateFacts",
    "Val",
    "comparison_cmps",
    "facts_from_conjuncts",
    "facts_from_predicates",
    "implied_comparisons",
    "is_interval_conjunct",
    "membership",
    "normalize_cmps",
    "predicates_unsatisfiable",
    "system_of",
]
