"""Three-valued semantic equivalence verdicts.

:class:`EquivalenceChecker` is the façade the rewrite engine and the
analysis passes use. ``check_graphs(before, after)`` (and the box-level
``check_boxes``) returns an :class:`EquivalenceVerdict`:

* ``VERIFIED`` — the two regions provably return the same rows on every
  database satisfying the catalog's declared dependencies. The ``bag``
  flag records whether *multiset* equality was proven (isomorphism of
  chased bag-exact tableaux) or set equality of provably duplicate-free
  queries.
* ``REFUTED`` — a concrete counterexample database was frozen out of a
  chased witness tableau: it satisfies every declared constraint, one
  side produces the witness row on it and the other side cannot. This is
  only issued when the chase completed, the witness carries no
  uninterpreted builtins, and the *repaired* witness (chased with every
  FK, including nullable ones) still admits no homomorphism — so an
  ``REFUTED`` verdict is a checkable artifact, not a heuristic.
* ``UNKNOWN`` — out of fragment, out of budget, or simply not provable
  from the declared dependencies. Always safe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.equivalence.chase import ChaseBudget, chase
from repro.analysis.equivalence.containment import (
    HOM_BUDGET,
    HOM_FOUND,
    HOM_NONE,
    find_homomorphism,
    is_isomorphic,
)
from repro.analysis.equivalence.dependencies import dependencies_from_catalog
from repro.analysis.equivalence.tableau import (
    CannotCanonicalize,
    Const,
    canonicalize_box,
    canonicalize_graph,
    probe_implied_equality,
)
from repro.errors import QgmError

VERIFIED = "VERIFIED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"


@dataclass
class EquivalenceVerdict:
    """Outcome of one equivalence check."""

    status: str
    reason: str = ""
    #: True when multiset (bag) equality was proven, not just set equality.
    bag: bool = False
    #: For REFUTED: {"tables": {name: [row, ...]}, "row": tuple,
    #: "missing_from": "left"/"right"} — a concrete database satisfying
    #: the declared dependencies on which the two sides disagree.
    counterexample: Optional[dict] = None
    seconds: float = 0.0

    def describe(self):
        text = self.status
        if self.status == VERIFIED:
            text += " (bag)" if self.bag else " (set)"
        if self.reason:
            text += ": " + self.reason
        return text


class EquivalenceChecker:
    """Chase-based equivalence decision procedure over one catalog."""

    def __init__(self, catalog=None, budget=None):
        self.catalog = catalog
        self.budget = budget or ChaseBudget()
        self.deps = dependencies_from_catalog(catalog)
        #: verdict status -> count, for observability.
        self.counts: Dict[str, int] = {VERIFIED: 0, REFUTED: 0, UNKNOWN: 0}
        self.seconds = 0.0

    # -- public entry points -------------------------------------------------

    def check_graphs(self, before, after):
        """Verdict on whole query graphs (their top boxes)."""
        return self._timed(self._check_canonicalizable, before, after, True)

    def check_boxes(self, before, after):
        """Verdict on two boxes read as standalone queries.

        Sound for judging an in-place box rewrite as long as the box's
        region is self-contained (canonicalization rejects correlated
        references that escape it)."""
        return self._timed(self._check_canonicalizable, before, after, False)

    def implied_equality(self, box, predicate):
        """True when ``predicate`` (a simple column equality of ``box``)
        is already implied by the other predicates plus the declared
        dependencies — i.e. the chase of the box *without* it equates the
        two sides."""
        try:
            probe = probe_implied_equality(box, predicate)
            if probe is None:
                return False
            tableau, left_index, right_index = probe
            if tableau.unsatisfiable:
                return True
            chased = chase(tableau, self.deps, self.budget)
            if chased.unsatisfiable:
                return True
            return chased.head[left_index] == chased.head[right_index]
        except (CannotCanonicalize, QgmError):
            return False

    # -- core ---------------------------------------------------------------

    def _timed(self, fn, before, after, whole_graph):
        start = time.perf_counter()
        verdict = fn(before, after, whole_graph)
        verdict.seconds = time.perf_counter() - start
        self.counts[verdict.status] = self.counts.get(verdict.status, 0) + 1
        self.seconds += verdict.seconds
        return verdict

    def _check_canonicalizable(self, before, after, whole_graph):
        canonicalize = canonicalize_graph if whole_graph else canonicalize_box
        try:
            left = canonicalize(before, max_disjuncts=self.budget.max_disjuncts)
        except (CannotCanonicalize, QgmError) as exc:
            return EquivalenceVerdict(UNKNOWN, "before side: %s" % exc)
        try:
            right = canonicalize(after, max_disjuncts=self.budget.max_disjuncts)
        except (CannotCanonicalize, QgmError) as exc:
            return EquivalenceVerdict(UNKNOWN, "after side: %s" % exc)
        return self.check_queries(left, right)

    def check_queries(self, left, right):
        """Verdict on two already-canonicalized queries."""
        if left.arity != right.arity:
            return EquivalenceVerdict(
                REFUTED, "output arity differs (%d vs %d)" % (left.arity, right.arity)
            )

        left_pairs = self._chase_disjuncts(left)
        right_pairs = self._chase_disjuncts(right)

        if not left_pairs and not right_pairs:
            return EquivalenceVerdict(VERIFIED, "both sides provably empty", bag=True)

        # Multiset equivalence: single conjunctive blocks with exact bag
        # bookkeeping that chase into isomorphic tableaux.
        if (
            len(left_pairs) == 1
            and len(right_pairs) == 1
            and left.bag_exact
            and right.bag_exact
            and left_pairs[0][1].bag_exact
            and right_pairs[0][1].bag_exact
        ):
            status = is_isomorphic(left_pairs[0][1], right_pairs[0][1], self.budget)
            if status == HOM_FOUND:
                return EquivalenceVerdict(
                    VERIFIED, "chased tableaux are isomorphic", bag=True
                )

        forward, forward_witness = self._contained(left_pairs, right_pairs)
        backward, backward_witness = self._contained(right_pairs, left_pairs)

        if forward == "ok" and backward == "ok":
            if left.duplicate_free and right.duplicate_free:
                return EquivalenceVerdict(
                    VERIFIED,
                    "set-equivalent and both sides are duplicate-free",
                )
            return EquivalenceVerdict(
                UNKNOWN,
                "set-equivalent, but duplicate multiplicities are not provably equal",
            )

        for direction, state, witness in (
            ("right", forward, forward_witness),
            ("left", backward, backward_witness),
        ):
            if state == "witness":
                other = right_pairs if direction == "right" else left_pairs
                verdict = self._try_refute(witness, other, missing_from=direction)
                if verdict is not None:
                    return verdict

        if "budget" in (forward, backward):
            return EquivalenceVerdict(UNKNOWN, "homomorphism budget exhausted")
        return EquivalenceVerdict(
            UNKNOWN, "containment not provable from the declared dependencies"
        )

    def _chase_disjuncts(self, query):
        """[(original, chased)] for the satisfiable disjuncts."""
        pairs = []
        for tableau in query.disjuncts:
            if tableau.unsatisfiable:
                continue
            chased = chase(tableau, self.deps, self.budget)
            if chased.unsatisfiable:
                continue
            pairs.append((tableau, chased))
        return pairs

    def _contained(self, left_pairs, right_pairs):
        """Is every left disjunct contained in the union of the right side?

        Returns ("ok", None), ("budget", None), or ("witness", chased
        tableau) — the witness being a left disjunct no right disjunct
        maps into (the classical chased-canonical-database argument).
        """
        saw_budget = False
        for _, chased in left_pairs:
            found = False
            disjunct_budget = False
            for original, _ in right_pairs:
                status, _ = find_homomorphism(original, chased, self.budget)
                if status == HOM_FOUND:
                    found = True
                    break
                if status == HOM_BUDGET:
                    disjunct_budget = True
            if found:
                continue
            if disjunct_budget:
                saw_budget = True
                continue
            return "witness", chased
        return ("budget" if saw_budget else "ok"), None

    def _try_refute(self, witness, other_pairs, missing_from):
        """Build a counterexample from ``witness`` or return None (UNKNOWN
        stays the verdict).

        Refutation demands certainty: complete chase, no uninterpreted
        builtins on the witness, and — after repairing the witness with
        *every* declared FK (nullable ones included) — still no atoms-only
        homomorphism from any disjunct of the other side.
        """
        if not witness.chase_complete or witness.has_builtins():
            return None
        repaired = chase(witness, self.deps, self.budget, repair=True)
        if repaired.unsatisfiable or not repaired.chase_complete:
            return None
        for original, _ in other_pairs:
            status, _ = find_homomorphism(
                original, repaired, self.budget, atoms_only=True
            )
            if status != HOM_NONE:
                return None
        counterexample = self._freeze(repaired)
        counterexample["missing_from"] = missing_from
        side = "before" if missing_from == "right" else "after"
        return EquivalenceVerdict(
            REFUTED,
            "the %s side produces row %r on the frozen counterexample "
            "database; the other side cannot" % (side, counterexample["row"]),
            counterexample=counterexample,
        )

    def _freeze(self, tableau):
        """Turn a chased, builtin-free tableau into a concrete database."""
        used = set()
        for atom in tableau.atoms:
            for term in atom.terms:
                if isinstance(term, Const):
                    used.add(term.value)
        for term in tableau.head:
            if isinstance(term, Const):
                used.add(term.value)

        assignment = {}
        counters = {"INT": 7001, "FLOAT": 7001, "STR": 1, "ANY": 9001}

        def freeze_var(type_name):
            family = type_name.upper() if type_name else "ANY"
            if family not in counters:
                family = "ANY"
            while True:
                count = counters[family]
                counters[family] = count + 1
                if family == "FLOAT":
                    value = count + 0.5
                elif family == "STR":
                    value = "cx%04d" % count
                else:
                    value = count
                if value not in used:
                    used.add(value)
                    return value

        tables = {}
        for atom in tableau.atoms:
            schema = tableau.schemas.get(atom.relation)
            row = []
            for ordinal, term in enumerate(atom.terms):
                if isinstance(term, Const):
                    row.append(term.value)
                    continue
                if term not in assignment:
                    type_name = "ANY"
                    if schema is not None and ordinal < len(schema.columns):
                        type_name = schema.columns[ordinal].type_name
                    assignment[term] = freeze_var(type_name)
                row.append(assignment[term])
            tables.setdefault(atom.relation, []).append(tuple(row))

        row = []
        for term in tableau.head:
            if isinstance(term, Const):
                row.append(term.value)
            else:
                if term not in assignment:
                    assignment[term] = freeze_var("ANY")
                row.append(assignment[term])
        row = tuple(row)
        return {"tables": tables, "row": row}


__all__ = [
    "EquivalenceChecker",
    "EquivalenceVerdict",
    "REFUTED",
    "UNKNOWN",
    "VERIFIED",
]
