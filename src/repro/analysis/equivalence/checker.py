"""Three-valued semantic equivalence verdicts.

:class:`EquivalenceChecker` is the façade the rewrite engine and the
analysis passes use. ``check_graphs(before, after)`` (and the box-level
``check_boxes``) returns an :class:`EquivalenceVerdict`:

* ``VERIFIED`` — the two regions provably return the same rows on every
  database satisfying the catalog's declared dependencies. The ``bag``
  flag records whether *multiset* equality was proven (isomorphism of
  chased bag-exact tableaux, possibly disjunct-by-disjunct) or set
  equality of provably duplicate-free queries.
* ``REFUTED`` — a concrete counterexample database was frozen out of a
  chased witness tableau: it satisfies every declared constraint, one
  side produces the witness row on it and the other side cannot. This is
  only issued when the chase completed, the witness carries no
  uninterpreted builtins, comparisons, or derived (aggregate) atoms, and
  the *repaired* witness (chased with every FK, including nullable ones)
  still admits no homomorphism — so a ``REFUTED`` verdict is a checkable
  artifact, not a heuristic.
* ``UNKNOWN`` — out of fragment, out of budget, or simply not provable
  from the declared dependencies. Always safe.

Every verdict carries a stable machine-readable ``reason_code`` (see
:mod:`repro.analysis.equivalence.reasons`) next to the human ``detail``
string, so sweeps can histogram outcomes without parsing prose.

Aggregation support: GROUPBY boxes canonicalize into *derived atoms*
whose meaning is an :class:`~repro.analysis.equivalence.tableau.AggregateSpec`.
Before any containment test the checker clusters every spec seen on
either side into equivalence classes (matching aggregate output
skeletons + equivalent grouping cores, bag-equivalent when a
bag-sensitive aggregate like SUM/COUNT/AVG is present, set-equivalent
for MIN/MAX/DISTINCT aggregates) and renames the derived symbols to a
class-canonical name — after which the ordinary homomorphism machinery
treats equivalent aggregations as the same relation. Exposed group keys
contribute a functional dependency over the derived relation (a global
aggregate is a one-row relation), so the chase can merge and demote
derived atoms exactly like keyed base tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.analysis.equivalence.chase import ChaseBudget, chase
from repro.analysis.equivalence.containment import (
    HOM_BUDGET,
    HOM_FOUND,
    HOM_NONE,
    find_homomorphism,
    is_isomorphic,
)
from repro.analysis.equivalence.dependencies import (
    DependencySet,
    FunctionalDependency,
    dependencies_from_catalog,
)
from repro.analysis.equivalence.reasons import Reason
from repro.analysis.equivalence.tableau import (
    Atom,
    CannotCanonicalize,
    Const,
    canonicalize_box,
    canonicalize_graph,
    probe_implied_equality,
)
from repro.errors import QgmError

VERIFIED = "VERIFIED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"

#: Aggregates whose value depends on the *bag* of argument rows; the
#: others (MIN/MAX, and any DISTINCT aggregate) only see the set.
_BAG_AGGS = frozenset({"SUM", "COUNT", "AVG"})


@dataclass
class EquivalenceVerdict:
    """Outcome of one equivalence check."""

    status: str
    detail: str = ""
    #: True when multiset (bag) equality was proven, not just set equality.
    bag: bool = False
    #: For REFUTED: {"tables": {name: [row, ...]}, "row": tuple,
    #: "missing_from": "left"/"right"} — a concrete database satisfying
    #: the declared dependencies on which the two sides disagree.
    counterexample: Optional[dict] = None
    seconds: float = 0.0
    #: Stable machine-readable code (see
    #: :mod:`repro.analysis.equivalence.reasons`).
    reason_code: str = ""

    @property
    def reason(self):
        """Backwards-compatible alias for :attr:`detail`."""
        return self.detail

    def describe(self):
        text = self.status
        if self.status == VERIFIED:
            text += " (bag)" if self.bag else " (set)"
        if self.detail:
            text += ": " + self.detail
        if self.reason_code:
            text += " [%s]" % self.reason_code
        return text


def _spec_needs_bag(spec):
    """Does any aggregate of ``spec`` read multiplicities of its core?"""
    for output in spec.outputs:
        if output[0] != "agg":
            continue
        _, func, distinct, _, _ = output
        if not distinct and func in _BAG_AGGS:
            return True
    return False


def _derived_fd(symbol, spec):
    """Functional dependency the derived relation's group keys induce.

    GROUP BY emits one row per key combination, so the exposed key
    columns determine the whole row — provided *every* key is exposed.
    A global aggregate (no keys) is a one-row relation: the empty
    determinant pins everything.
    """
    if spec.group_arity == 0:
        return FunctionalDependency(symbol, ())
    positions = []
    exposed = set()
    for index, output in enumerate(spec.outputs):
        if output[0] == "key":
            positions.append(index)
            exposed.add(output[1])
    if exposed >= set(range(spec.group_arity)):
        return FunctionalDependency(symbol, tuple(positions))
    return None


class EquivalenceChecker:
    """Chase-based equivalence decision procedure over one catalog."""

    def __init__(self, catalog=None, budget=None):
        self.catalog = catalog
        self.budget = budget or ChaseBudget()
        self.deps = dependencies_from_catalog(catalog)
        #: verdict status -> count, for observability.
        self.counts: Dict[str, int] = {VERIFIED: 0, REFUTED: 0, UNKNOWN: 0}
        self.seconds = 0.0

    # -- public entry points -------------------------------------------------

    def check_graphs(self, before, after):
        """Verdict on whole query graphs (their top boxes)."""
        return self._timed(before, after, whole_graph=True)

    def check_boxes(self, before, after, allow_special=False):
        """Verdict on two boxes read as standalone queries.

        Sound for judging an in-place box rewrite as long as the box's
        region is self-contained (canonicalization rejects correlated
        references that escape it). ``allow_special`` admits magic and
        supplementary regions — only sound for scoped firing validation,
        where the region is compared as a standalone query."""
        return self._timed(
            before, after, whole_graph=False, allow_special=allow_special
        )

    def implied_equality(self, box, predicate):
        """True when ``predicate`` (a simple column equality of ``box``)
        is already implied by the other predicates plus the declared
        dependencies — i.e. the chase of the box *without* it equates the
        two sides."""
        try:
            probe = probe_implied_equality(box, predicate)
            if probe is None:
                return False
            tableau, left_index, right_index = probe
            if tableau.unsatisfiable:
                return True
            chased = chase(tableau, self.deps, self.budget)
            if chased.unsatisfiable:
                return True
            return chased.head[left_index] == chased.head[right_index]
        except (CannotCanonicalize, QgmError):
            return False

    # -- core ---------------------------------------------------------------

    def _timed(self, before, after, whole_graph, allow_special=False):
        start = time.perf_counter()
        verdict = self._check_canonicalizable(
            before, after, whole_graph, allow_special
        )
        verdict.seconds = time.perf_counter() - start
        self.counts[verdict.status] = self.counts.get(verdict.status, 0) + 1
        self.seconds += verdict.seconds
        return verdict

    def _check_canonicalizable(self, before, after, whole_graph, allow_special):
        if whole_graph:
            def canonicalize(box):
                return canonicalize_graph(
                    box, max_disjuncts=self.budget.max_disjuncts
                )
        else:
            def canonicalize(box):
                return canonicalize_box(
                    box,
                    max_disjuncts=self.budget.max_disjuncts,
                    allow_special=allow_special,
                )
        try:
            left = canonicalize(before)
        except CannotCanonicalize as exc:
            return EquivalenceVerdict(
                UNKNOWN, "before side: %s" % exc, reason_code=exc.code
            )
        except QgmError as exc:
            return EquivalenceVerdict(
                UNKNOWN, "before side: %s" % exc,
                reason_code=Reason.FRAGMENT_OTHER,
            )
        try:
            right = canonicalize(after)
        except CannotCanonicalize as exc:
            return EquivalenceVerdict(
                UNKNOWN, "after side: %s" % exc, reason_code=exc.code
            )
        except QgmError as exc:
            return EquivalenceVerdict(
                UNKNOWN, "after side: %s" % exc,
                reason_code=Reason.FRAGMENT_OTHER,
            )
        return self.check_queries(left, right)

    def check_queries(self, left, right):
        """Verdict on two already-canonicalized queries."""
        if left.arity != right.arity:
            return EquivalenceVerdict(
                REFUTED,
                "output arity differs (%d vs %d)" % (left.arity, right.arity),
                reason_code=Reason.REFUTED_ARITY,
            )

        has_derived = any(
            t.derived for t in left.disjuncts + right.disjuncts
        )
        if has_derived:
            left, right = self._canonize_derived([left, right])
        deps = self._extended_deps(left.disjuncts + right.disjuncts)

        left_pairs = self._chase_disjuncts(left, deps)
        right_pairs = self._chase_disjuncts(right, deps)

        if not left_pairs and not right_pairs:
            return EquivalenceVerdict(
                VERIFIED,
                "both sides provably empty",
                bag=True,
                reason_code=Reason.VERIFIED_EMPTY,
            )

        # Multiset equivalence: single conjunctive blocks with exact bag
        # bookkeeping that chase into isomorphic tableaux.
        if (
            len(left_pairs) == 1
            and len(right_pairs) == 1
            and left.bag_exact
            and right.bag_exact
            and left_pairs[0][1].bag_exact
            and right_pairs[0][1].bag_exact
        ):
            status = is_isomorphic(left_pairs[0][1], right_pairs[0][1], self.budget)
            if status == HOM_FOUND:
                return EquivalenceVerdict(
                    VERIFIED,
                    "chased tableaux are isomorphic",
                    bag=True,
                    reason_code=Reason.VERIFIED_ISO,
                )

        # Disjunct-by-disjunct matching: UNION ALL sums multiplicities, so
        # a perfect matching of pairwise-isomorphic bag-exact disjuncts
        # (e.g. the two expansions of a rewritten LEFT join) certifies bag
        # equality of the unions.
        if (
            len(left_pairs) == len(right_pairs)
            and len(left_pairs) > 1
            and left.bag_exact
            and right.bag_exact
            and all(chased.bag_exact for _, chased in left_pairs + right_pairs)
            and self._disjunct_matching(left_pairs, right_pairs)
        ):
            return EquivalenceVerdict(
                VERIFIED,
                "disjuncts match pairwise up to isomorphism",
                bag=True,
                reason_code=Reason.VERIFIED_DISJUNCTS,
            )

        forward, forward_witness = self._contained(left_pairs, right_pairs)
        backward, backward_witness = self._contained(right_pairs, left_pairs)

        if forward == "ok" and backward == "ok":
            if left.duplicate_free and right.duplicate_free:
                return EquivalenceVerdict(
                    VERIFIED,
                    "set-equivalent and both sides are duplicate-free",
                    reason_code=Reason.VERIFIED_SET,
                )
            return EquivalenceVerdict(
                UNKNOWN,
                "set-equivalent, but duplicate multiplicities are not provably equal",
                reason_code=Reason.UNPROVEN_MULTIPLICITY,
            )

        for direction, state, witness in (
            ("right", forward, forward_witness),
            ("left", backward, backward_witness),
        ):
            if state == "witness":
                other = right_pairs if direction == "right" else left_pairs
                verdict = self._try_refute(witness, other, missing_from=direction)
                if verdict is not None:
                    return verdict

        if "budget" in (forward, backward):
            return EquivalenceVerdict(
                UNKNOWN,
                "homomorphism budget exhausted",
                reason_code=Reason.BUDGET_HOM,
            )
        return EquivalenceVerdict(
            UNKNOWN,
            "containment not provable from the declared dependencies",
            reason_code=Reason.UNPROVEN_AGGREGATE
            if has_derived
            else Reason.UNPROVEN_CONTAINMENT,
        )

    # -- derived (aggregate) relations ---------------------------------------

    def _canonize_derived(self, queries):
        """Rename derived symbols to equivalence-class-canonical names.

        Two specs land in the same class when their aggregate outputs
        coincide and their grouping cores are provably equivalent; after
        the rename, equivalent aggregations on the two sides share a
        relation symbol and ordinary homomorphisms line them up.
        """
        representatives = []

        def class_of(spec):
            for index, representative in enumerate(representatives):
                if self._specs_match(representative, spec):
                    return index
            representatives.append(spec)
            return len(representatives) - 1

        out = []
        for query in queries:
            disjuncts = []
            for tableau in query.disjuncts:
                if not tableau.derived:
                    disjuncts.append(tableau)
                    continue
                rename = {
                    symbol: "~agg!%d" % class_of(spec)
                    for symbol, spec in tableau.derived.items()
                }
                disjuncts.append(
                    replace(
                        tableau,
                        atoms=tuple(
                            Atom(
                                rename.get(atom.relation, atom.relation),
                                atom.terms,
                                atom.existential,
                            )
                            for atom in tableau.atoms
                        ),
                        derived={
                            rename[symbol]: spec
                            for symbol, spec in tableau.derived.items()
                        },
                    )
                )
            out.append(replace(query, disjuncts=disjuncts))
        return out

    def _specs_match(self, left, right):
        if left.group_arity != right.group_arity:
            return False
        if left.outputs != right.outputs:
            return False
        return self._cores_equivalent(
            left.core, right.core, _spec_needs_bag(left)
        )

    def _cores_equivalent(self, left, right, need_bag):
        """Are two grouping cores equivalent queries?

        Bag equivalence (isomorphism of chased bag-exact cores) when a
        bag-sensitive aggregate consumes them, set equivalence (mutual
        containment) otherwise.
        """
        pair = self._align_core_pair(left, right)
        if pair is None:
            return False
        left, right = pair
        if left.unsatisfiable or right.unsatisfiable:
            return left.unsatisfiable and right.unsatisfiable
        deps = self._extended_deps([left, right])
        left_chased = chase(left, deps, self.budget)
        right_chased = chase(right, deps, self.budget)
        if left_chased.unsatisfiable or right_chased.unsatisfiable:
            return left_chased.unsatisfiable and right_chased.unsatisfiable
        if need_bag:
            if not (left.bag_exact and right.bag_exact):
                return False
            return (
                is_isomorphic(left_chased, right_chased, self.budget)
                == HOM_FOUND
            )
        forward, _ = find_homomorphism(left, right_chased, self.budget)
        backward, _ = find_homomorphism(right, left_chased, self.budget)
        return forward == HOM_FOUND and backward == HOM_FOUND

    def _align_core_pair(self, left, right):
        """Rename ``right``'s nested derived symbols onto matching ones of
        ``left`` (cores can themselves contain aggregations)."""
        if not left.derived and not right.derived:
            return left, right
        if len(left.derived) != len(right.derived):
            return None
        rename = {}
        taken = set()
        for left_symbol, left_spec in left.derived.items():
            match = None
            for right_symbol, right_spec in right.derived.items():
                if right_symbol in taken:
                    continue
                if self._specs_match(left_spec, right_spec):
                    match = right_symbol
                    break
            if match is None:
                return None
            rename[match] = left_symbol
            taken.add(match)
        renamed = replace(
            right,
            atoms=tuple(
                Atom(
                    rename.get(atom.relation, atom.relation),
                    atom.terms,
                    atom.existential,
                )
                for atom in right.atoms
            ),
            derived={
                rename.get(symbol, symbol): spec
                for symbol, spec in right.derived.items()
            },
        )
        return left, renamed

    def _extended_deps(self, tableaux):
        """Base dependencies plus the FDs of every derived relation."""
        extra = {}
        for tableau in tableaux:
            for symbol, spec in tableau.derived.items():
                fd = _derived_fd(symbol, spec)
                if fd is not None and symbol not in extra:
                    extra[symbol] = [fd]
        if not extra:
            return self.deps
        if self.deps is None:
            return DependencySet(fds=extra, inds={}, repair_inds={}, schemas={})
        fds = dict(self.deps.fds)
        fds.update(extra)
        return DependencySet(
            fds=fds,
            inds=self.deps.inds,
            repair_inds=self.deps.repair_inds,
            schemas=self.deps.schemas,
        )

    # -- containment machinery ------------------------------------------------

    def _chase_disjuncts(self, query, deps=None):
        """[(original, chased)] for the satisfiable disjuncts."""
        deps = deps if deps is not None else self.deps
        pairs = []
        for tableau in query.disjuncts:
            if tableau.unsatisfiable:
                continue
            chased = chase(tableau, deps, self.budget)
            if chased.unsatisfiable:
                continue
            pairs.append((tableau, chased))
        return pairs

    def _disjunct_matching(self, left_pairs, right_pairs):
        """Perfect matching of pairwise-isomorphic chased disjuncts."""
        size = len(left_pairs)
        compatible = [
            [
                is_isomorphic(left_chased, right_chased, self.budget)
                == HOM_FOUND
                for _, right_chased in right_pairs
            ]
            for _, left_chased in left_pairs
        ]
        taken = [False] * size

        def assign(index):
            if index == size:
                return True
            for candidate in range(size):
                if taken[candidate] or not compatible[index][candidate]:
                    continue
                taken[candidate] = True
                if assign(index + 1):
                    return True
                taken[candidate] = False
            return False

        return assign(0)

    def _contained(self, left_pairs, right_pairs):
        """Is every left disjunct contained in the union of the right side?

        Returns ("ok", None), ("budget", None), or ("witness", chased
        tableau) — the witness being a left disjunct no right disjunct
        maps into (the classical chased-canonical-database argument).
        """
        saw_budget = False
        for _, chased in left_pairs:
            found = False
            disjunct_budget = False
            for original, _ in right_pairs:
                status, _ = find_homomorphism(original, chased, self.budget)
                if status == HOM_FOUND:
                    found = True
                    break
                if status == HOM_BUDGET:
                    disjunct_budget = True
            if found:
                continue
            if disjunct_budget:
                saw_budget = True
                continue
            return "witness", chased
        return ("budget" if saw_budget else "ok"), None

    def _try_refute(self, witness, other_pairs, missing_from):
        """Build a counterexample from ``witness`` or return None (UNKNOWN
        stays the verdict).

        Refutation demands certainty: complete chase; no uninterpreted
        builtins, interpreted comparisons, or derived atoms on the
        witness (freezing cannot pick concrete values for those); and —
        after repairing the witness with *every* declared FK (nullable
        ones included) — still no atoms-only homomorphism from any
        disjunct of the other side.
        """
        if (
            not witness.chase_complete
            or witness.has_builtins()
            or witness.comparisons
            or witness.derived
        ):
            return None
        repaired = chase(witness, self.deps, self.budget, repair=True)
        if repaired.unsatisfiable or not repaired.chase_complete:
            return None
        for original, _ in other_pairs:
            status, _ = find_homomorphism(
                original, repaired, self.budget, atoms_only=True
            )
            if status != HOM_NONE:
                return None
        counterexample = self._freeze(repaired)
        counterexample["missing_from"] = missing_from
        side = "before" if missing_from == "right" else "after"
        return EquivalenceVerdict(
            REFUTED,
            "the %s side produces row %r on the frozen counterexample "
            "database; the other side cannot" % (side, counterexample["row"]),
            counterexample=counterexample,
            reason_code=Reason.REFUTED_COUNTEREXAMPLE,
        )

    def _freeze(self, tableau):
        """Turn a chased, builtin-free tableau into a concrete database."""
        used = set()
        for atom in tableau.atoms:
            for term in atom.terms:
                if isinstance(term, Const):
                    used.add(term.value)
        for term in tableau.head:
            if isinstance(term, Const):
                used.add(term.value)

        assignment = {}
        counters = {"INT": 7001, "FLOAT": 7001, "STR": 1, "ANY": 9001}

        def freeze_var(type_name):
            family = type_name.upper() if type_name else "ANY"
            if family not in counters:
                family = "ANY"
            while True:
                count = counters[family]
                counters[family] = count + 1
                if family == "FLOAT":
                    value = count + 0.5
                elif family == "STR":
                    value = "cx%04d" % count
                else:
                    value = count
                if value not in used:
                    used.add(value)
                    return value

        tables = {}
        for atom in tableau.atoms:
            schema = tableau.schemas.get(atom.relation)
            row = []
            for ordinal, term in enumerate(atom.terms):
                if isinstance(term, Const):
                    row.append(term.value)
                    continue
                if term not in assignment:
                    type_name = "ANY"
                    if schema is not None and ordinal < len(schema.columns):
                        type_name = schema.columns[ordinal].type_name
                    assignment[term] = freeze_var(type_name)
                row.append(assignment[term])
            tables.setdefault(atom.relation, []).append(tuple(row))

        row = []
        for term in tableau.head:
            if isinstance(term, Const):
                row.append(term.value)
            else:
                if term not in assignment:
                    assignment[term] = freeze_var("ANY")
                row.append(assignment[term])
        row = tuple(row)
        return {"tables": tables, "row": row}


__all__ = [
    "EquivalenceChecker",
    "EquivalenceVerdict",
    "REFUTED",
    "UNKNOWN",
    "VERIFIED",
]
