"""Stable machine-readable reason codes for equivalence verdicts.

Every :class:`~repro.analysis.equivalence.checker.EquivalenceVerdict`
carries one of these codes in ``reason_code`` next to the free-form
``detail`` string, so the translation-validation sweep can aggregate a
per-rule × per-reason histogram without parsing prose. The strings are a
stable contract: CI trending and the ``--json`` output key on them.

Naming scheme:

* ``fragment:*`` — the region could not be canonicalized (the named
  feature is outside the supported fragment). Attached to
  :class:`~repro.analysis.equivalence.tableau.CannotCanonicalize`.
* ``budget:*`` — a deterministic resource cap was hit mid-proof.
* ``unproven:*`` — canonicalization succeeded but neither equivalence
  nor a counterexample could be established.
* ``verified:*`` / ``refuted:*`` — which argument produced the definite
  verdict.
"""

from __future__ import annotations


class Reason:
    """Namespace of stable reason codes (plain strings)."""

    # -- UNKNOWN: out of fragment ------------------------------------------
    FRAGMENT_MAGIC = "fragment:magic"
    FRAGMENT_GROUPBY = "fragment:groupby"
    FRAGMENT_OUTERJOIN = "fragment:outerjoin"
    FRAGMENT_SETOP = "fragment:setop"
    FRAGMENT_SUBQUERY = "fragment:subquery"
    FRAGMENT_CORRELATION = "fragment:correlation"
    FRAGMENT_PARAMETER = "fragment:parameter"
    FRAGMENT_EXPRESSION = "fragment:expression"
    FRAGMENT_LIMIT = "fragment:limit"
    FRAGMENT_UNION = "fragment:union"
    FRAGMENT_SCHEMA = "fragment:schema"
    FRAGMENT_OTHER = "fragment:other"

    # -- UNKNOWN: in fragment, no proof ------------------------------------
    BUDGET_HOM = "budget:homomorphism"
    UNPROVEN_CONTAINMENT = "unproven:containment"
    UNPROVEN_MULTIPLICITY = "unproven:multiplicity"
    UNPROVEN_AGGREGATE = "unproven:aggregate-core"
    UNPROVEN_SCOPE = "unproven:scoped-region"

    # -- VERIFIED ----------------------------------------------------------
    VERIFIED_EMPTY = "verified:both-empty"
    VERIFIED_ISO = "verified:bag-isomorphic"
    VERIFIED_DISJUNCTS = "verified:disjunct-isomorphic"
    VERIFIED_SET = "verified:set-equal"
    VERIFIED_SCOPED = "verified:scoped-region"
    VERIFIED_UNCHANGED = "verified:unchanged"

    # -- REFUTED -----------------------------------------------------------
    REFUTED_ARITY = "refuted:arity"
    REFUTED_COUNTEREXAMPLE = "refuted:counterexample"


#: Every code, for registry-style tests.
ALL_REASON_CODES = tuple(
    value
    for name, value in sorted(vars(Reason).items())
    if not name.startswith("_")
)


__all__ = ["ALL_REASON_CODES", "Reason"]
