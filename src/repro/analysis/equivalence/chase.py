"""The chase: closing a tableau under the catalog's dependencies.

Equality-generating steps (from key FDs) unify the non-key columns of two
atoms that agree on a key; tuple-generating steps (from FK INDs) add the
parent atom a child atom promises. The result is a fixpoint — or, when
the deterministic budget runs out first, a partial chase marked
``chase_complete=False`` (still sound for proving containment *into* it,
never used to refute).

Two bag-semantics refinements ride along:

* **merge**: identical atoms over a table with a usable key denote the
  same stored row; merging them multiplies multiplicity by exactly one.
  Over keyless tables a merge is only set-sound, so it clears
  ``bag_exact``.
* **demote**: a ``foreach`` atom whose full key is anchored outside it
  (constants, head terms, or other foreach atoms) matches at most one
  row, so it contributes multiplicity 1-if-present — precisely the
  semantics of an existential atom. Demoting it lets the isomorphism
  test equate an FK join with its chase-implied existential parent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.equivalence import domains
from repro.analysis.equivalence.tableau import (
    Atom,
    Const,
    Tableau,
    Var,
    _resolve_cmps,
    _Unifier,
    _Unsat,
)


@dataclass
class ChaseBudget:
    """Deterministic resource caps; exceeding any yields UNKNOWN, never a
    wrong verdict."""

    max_atoms: int = 64
    max_steps: int = 400
    max_hom_nodes: int = 4000
    max_disjuncts: int = 8


def _merge_atoms(atoms, keyed_tables, state):
    """Deduplicate structurally identical atoms (post-resolution).

    Returns the merged list; updates ``state['bag_exact']`` when a merge
    over a keyless table makes multiplicities set-only.
    """
    merged = {}
    order = []
    for atom in atoms:
        key = (atom.relation, atom.terms)
        prior = merged.get(key)
        if prior is None:
            merged[key] = atom
            order.append(key)
            continue
        if not prior.existential and not atom.existential:
            # Two foreach copies of one row: merging multiplies by exactly
            # one only when a key guarantees row identity.
            if atom.relation not in keyed_tables:
                state["bag_exact"] = False
        if prior.existential and not atom.existential:
            merged[key] = atom
    return [merged[key] for key in order]


def _demote_anchored(atoms, head, schemas, fds):
    """Turn key-determined foreach atoms into existential atoms.

    A term is *determined* when it is a constant, a head term, or
    FD-implied from determined terms through some atom (the row a key
    pins is unique, so all its columns are pinned too). A foreach atom
    whose full key is determined matches at most one row for any output
    tuple, so it contributes multiplicity one-if-present — exactly an
    existential atom's semantics. The closure makes the result
    order-independent.
    """

    def fixed(term, determined):
        return isinstance(term, Const) or term in determined

    def closure(seeds):
        determined = set(seeds)
        grew = True
        while grew:
            grew = False
            for atom in atoms:
                for fd in fds.get(atom.relation, ()):
                    if all(fixed(atom.terms[o], determined) for o in fd.determinant):
                        for term in atom.terms:
                            if not fixed(term, determined):
                                determined.add(term)
                                grew = True
        return determined

    # Demote one atom at a time: each step seeds the closure with the head
    # and the terms of the *other* (still-foreach) atoms, so two atoms that
    # only anchor each other can never both be demoted — the second one's
    # key would no longer be determined. Closure may run through
    # existential atoms: a key-pinned existential witness is unique, so its
    # columns are pinned too.
    atoms = list(atoms)
    changed = True
    while changed:
        changed = False
        for index, atom in enumerate(atoms):
            if atom.existential or atom.relation not in fds:
                continue
            seeds = set(head)
            for other_index, other in enumerate(atoms):
                if other_index != index and not other.existential:
                    seeds.update(other.terms)
            determined = closure(seeds)
            if any(
                all(fixed(atom.terms[o], determined) for o in fd.determinant)
                for fd in fds.get(atom.relation, ())
            ):
                atoms[index] = Atom(atom.relation, atom.terms, existential=True)
                changed = True
    return atoms


def chase(tableau, deps, budget=None, repair=False):
    """Chase ``tableau`` with ``deps`` to (budgeted) fixpoint.

    With ``repair=True`` the nullable-FK inclusion dependencies join in;
    that mode builds counterexample databases, which must satisfy every
    declared constraint, not only the proving subset.
    """
    budget = budget or ChaseBudget()
    if tableau.unsatisfiable or deps is None or deps.is_empty():
        return tableau

    unifier = _Unifier()
    atoms = list(tableau.atoms)
    schemas = dict(tableau.schemas)
    next_var = tableau.next_var
    steps = 0
    complete = True
    state = {"bag_exact": tableau.bag_exact}
    keyed = deps.keyed_tables()

    def resolved(atom):
        return Atom(atom.relation, unifier.resolve(atom.terms), atom.existential)

    changed = True
    while changed:
        changed = False
        atoms = _merge_atoms([resolved(a) for a in atoms], keyed, state)

        # Equality-generating steps: atoms agreeing on a key are one row.
        try:
            for relation, table_fds in deps.fds.items():
                group = [a for a in atoms if a.relation == relation]
                for fd in table_fds:
                    buckets = {}
                    for atom in group:
                        key = tuple(
                            unifier.find(atom.terms[o]) for o in fd.determinant
                        )
                        buckets.setdefault(key, []).append(atom)
                    for bucket in buckets.values():
                        first = bucket[0]
                        for other in bucket[1:]:
                            for left, right in zip(first.terms, other.terms):
                                if unifier.union(left, right):
                                    changed = True
                                    steps += 1
        except _Unsat:
            return Tableau(
                atoms=(),
                builtins=tableau.builtins,
                head=tableau.head,
                comparisons=tableau.comparisons,
                nonnull=tableau.nonnull,
                schemas=schemas,
                derived=dict(tableau.derived),
                bag_exact=state["bag_exact"],
                next_var=next_var,
                chase_complete=True,
                unsatisfiable=True,
            )

        if steps > budget.max_steps:
            complete = False
            break

        # Tuple-generating steps: each child atom implies its FK parent.
        ind_map = dict(deps.inds)
        if repair:
            for child, extra in deps.repair_inds.items():
                ind_map.setdefault(child, [])
                ind_map[child] = ind_map[child] + extra
        additions = []
        atoms = [resolved(a) for a in atoms]
        present = {}
        for atom in atoms:
            present.setdefault(atom.relation, []).append(atom)
        for atom in list(atoms):
            for ind in ind_map.get(atom.relation, ()):
                child_terms = tuple(atom.terms[o] for o in ind.child_cols)
                satisfied = any(
                    tuple(parent.terms[o] for o in ind.parent_cols) == child_terms
                    for parent in present.get(ind.parent, ())
                )
                if satisfied:
                    continue
                parent_schema = deps.schemas.get(ind.parent)
                if parent_schema is None:
                    continue
                terms = []
                for ordinal in range(len(parent_schema.columns)):
                    if ordinal in ind.parent_cols:
                        terms.append(
                            child_terms[ind.parent_cols.index(ordinal)]
                        )
                    else:
                        terms.append(Var(next_var))
                        next_var += 1
                new_atom = Atom(ind.parent, tuple(terms), existential=True)
                additions.append(new_atom)
                present.setdefault(ind.parent, []).append(new_atom)
                schemas[ind.parent] = parent_schema
                steps += 1
                changed = True
                if len(atoms) + len(additions) > budget.max_atoms:
                    break
            if len(atoms) + len(additions) > budget.max_atoms or steps > budget.max_steps:
                break
        atoms.extend(additions)
        if len(atoms) > budget.max_atoms or steps > budget.max_steps:
            complete = False
            break

    atoms = _merge_atoms([resolved(a) for a in atoms], keyed, state)
    atoms = _demote_anchored(
        atoms, unifier.resolve(tableau.head), schemas, deps.fds
    )
    # Chase equalities may have merged comparison sides; re-normalize and
    # re-check for contradictions (e.g. an FD equating x with a constant
    # outside x's admitted range makes the block provably empty).
    comparisons, cmp_unsat = _resolve_cmps(tableau.comparisons, unifier.find)
    unsat = cmp_unsat or (
        bool(comparisons) and domains.system_of(comparisons).unsatisfiable()
    )
    return Tableau(
        atoms=tuple(atoms),
        builtins=tuple(
            type(b)(b.skeleton, unifier.resolve(b.terms)) for b in tableau.builtins
        ),
        head=unifier.resolve(tableau.head),
        comparisons=comparisons,
        nonnull=frozenset(unifier.find(t) for t in tableau.nonnull),
        schemas=schemas,
        derived=dict(tableau.derived),
        bag_exact=state["bag_exact"],
        next_var=next_var,
        chase_complete=complete and tableau.chase_complete,
        unsatisfiable=unsat,
    )


__all__ = ["ChaseBudget", "chase"]
