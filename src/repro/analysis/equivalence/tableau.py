"""Canonicalization of QGM regions into tableaux (conjunctive queries).

A *tableau* is the classical representation used by chase-based
containment tests: a set of atoms over base tables whose arguments are
variables and constants, a conjunction of predicates, and a head (the
output row). ``canonicalize_box`` flattens a SELECT box — recursively
inlining quantifiers that range over other SELECT/BASE boxes — into one
tableau, and a top-level UNION of such blocks into a list of tableaux
(a union of conjunctive queries).

Three fragments beyond plain conjunctive blocks canonicalize too:

* **comparisons** — ``<,<=,>,>=,<>`` conjuncts (and the desugared forms
  of BETWEEN and IN) become structured
  :class:`~repro.analysis.equivalence.domains.Cmp` facts in
  ``Tableau.comparisons`` instead of opaque builtins, so containment can
  prove predicate *implication* and the chase can detect contradictory
  ranges (``unsatisfiable=True`` — a provably empty block);
* **GROUPBY** — an aggregation box becomes a *derived atom* over a
  per-tableau relation symbol whose meaning is an
  :class:`AggregateSpec`: the grouping core (a sub-tableau whose head is
  the group keys followed by the aggregate arguments) plus the aggregate
  output skeletons. The checker aligns specs across the two sides and
  compares the chased cores (see ``checker._align_derived``);
* **OUTERJOIN** — a LEFT join whose consumer null-rejects a column
  computed strictly from the non-preserved side is inlined as a plain
  inner join; otherwise the join expands into two disjuncts: the inner
  join, and the NULL-padded anti part guarded by an uninterpreted
  ``NOMATCH`` builtin that fingerprints the right side and ON condition.

Anything else outside the fragment (INTERSECT/EXCEPT, magic boxes unless
``allow_special`` is set, scalar or anti quantifiers, parameters,
correlation into an uncanonicalized scope, LIMIT) raises
:class:`CannotCanonicalize` carrying a stable
:class:`~repro.analysis.equivalence.reasons.Reason` code; callers
translate that into the ``UNKNOWN`` verdict. Refusing to canonicalize is
always safe — the checker never guesses.

Multiplicity bookkeeping
------------------------

SQL is a bag language, so each tableau tracks whether its multiplicities
are *exactly* those of the canonical conjunctive query:

* a ``foreach`` atom contributes one result row per matching base row;
* an ``existential`` atom (from an E quantifier) only filters;
* inlining a DISTINCT (ENFORCE) or PERMIT child whose duplicate-freeness
  is not provable loses exactness (``bag_exact=False``) but keeps the
  set-level reading, which is still enough for set equivalence of
  duplicate-free queries.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.equivalence import domains
from repro.analysis.equivalence.reasons import Reason
from repro.qgm import expr as qe
from repro.qgm.keys import box_keys, is_duplicate_free
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType


class CannotCanonicalize(Exception):
    """The region uses a feature outside the supported fragment.

    ``code`` is a stable ``fragment:*`` reason code (see
    :class:`~repro.analysis.equivalence.reasons.Reason`).
    """

    def __init__(self, reason, code=Reason.FRAGMENT_OTHER):
        super().__init__(reason)
        self.reason = reason
        self.code = code


class Term:
    """Base class for tableau terms."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Term):
    """A labelled null. Identity is the numeric id."""

    vid: int

    def __repr__(self):
        return "X%d" % self.vid


@dataclass(frozen=True)
class Const(Term):
    """A concrete value (``None`` is SQL NULL)."""

    value: object

    def __repr__(self):
        return "c(%r)" % (self.value,)


@dataclass(frozen=True)
class _RightMark:
    """Inert marker for a right-side column inside an outer-join NOMATCH
    guard; compares only to itself, so guards only match structurally
    identical expansions."""

    column: str


@dataclass(frozen=True)
class Atom:
    """``relation(terms)``; ``existential`` atoms filter but do not
    multiply (they come from E quantifiers or from chase steps)."""

    relation: str
    terms: Tuple[Term, ...]
    existential: bool = False

    def __repr__(self):
        flag = "?" if self.existential else ""
        return "%s%s(%s)" % (
            flag, self.relation, ", ".join(repr(t) for t in self.terms)
        )


@dataclass(frozen=True)
class Builtin:
    """An uninterpreted predicate: a serialized expression skeleton whose
    term positions are placeholders ``§0 .. §n`` into ``terms``."""

    skeleton: str
    terms: Tuple[Term, ...]

    def __repr__(self):
        return "[%s | %s]" % (self.skeleton, ", ".join(repr(t) for t in self.terms))


@dataclass
class AggregateSpec:
    """The meaning of one derived (GROUPBY) relation symbol.

    ``core`` is the grouping core: a tableau whose head lists the group
    key terms followed by every aggregate argument term. ``outputs``
    describes the derived relation's columns positionally:

    * ``("key", i)`` — the i-th group key;
    * ``("agg", func, distinct, skeleton, positions)`` — an aggregate
      whose argument skeleton (``"*"`` for COUNT(*)) plugs the core head
      terms at ``positions``.
    """

    core: "Tableau"
    group_arity: int
    outputs: Tuple[Tuple, ...]

    def __repr__(self):
        return "AggregateSpec(keys=%d, outputs=%r, core=%s)" % (
            self.group_arity, self.outputs, _tableau_fingerprint(self.core),
        )


@dataclass
class Tableau:
    """One conjunctive block.

    ``comparisons`` holds the interpreted order/membership facts (sides
    are :class:`Var` or :class:`~repro.analysis.equivalence.domains.Val`
    after ``finish``); ``nonnull`` lists terms the block's own
    predicates force to be non-NULL (SQL comparisons never hold on
    NULL). ``schemas`` maps each atom relation to its
    :class:`~repro.catalog.schema.TableSchema`; ``derived`` maps
    aggregate relation symbols to their :class:`AggregateSpec`.
    """

    atoms: Tuple[Atom, ...]
    builtins: Tuple[Builtin, ...]
    head: Tuple[Term, ...]
    comparisons: Tuple[domains.Cmp, ...] = ()
    nonnull: FrozenSet[Term] = frozenset()
    schemas: Dict[str, object] = field(default_factory=dict)
    derived: Dict[str, AggregateSpec] = field(default_factory=dict)
    bag_exact: bool = True
    next_var: int = 0
    chase_complete: bool = True
    unsatisfiable: bool = False

    def has_builtins(self):
        return bool(self.builtins)

    def interpreted_only(self):
        """No uninterpreted builtins and no derived atoms — every
        constraint is either structural or an interpreted comparison."""
        return not self.builtins and not self.derived


@dataclass
class CanonicalQuery:
    """A union of conjunctive blocks plus top-level duplicate bookkeeping."""

    disjuncts: List[Tableau]
    duplicate_free: bool
    bag_exact: bool
    arity: int


def _domain_side(term):
    """Tableau term -> comparison-domain side (constants become Val)."""
    if isinstance(term, Const):
        return domains.Val(term.value)
    return term


def _resolve_cmps(comparisons, find):
    """Resolve comparison sides through a unifier and normalize.

    Returns ``(kept, unsat)`` like
    :func:`~repro.analysis.equivalence.domains.normalize_cmps`.
    """
    resolved = []
    for cmp in comparisons:
        left = _domain_side(find(cmp.left))
        if cmp.op == "in":
            resolved.append(domains.Cmp("in", left, cmp.right))
        else:
            resolved.append(
                domains.Cmp(cmp.op, left, _domain_side(find(cmp.right)))
            )
    return domains.normalize_cmps(resolved)


def _tableau_fingerprint(tableau):
    """Deterministic structural rendering (used for NOMATCH guards and
    aggregate-spec reprs; variable numbering is allocation-ordered, so
    structurally identical regions render identically)."""
    return "atoms=%r builtins=%r cmps=%r head=%r nonnull=%s derived=%s" % (
        tableau.atoms,
        tableau.builtins,
        tableau.comparisons,
        tableau.head,
        sorted(map(repr, tableau.nonnull)),
        sorted((name, repr(spec)) for name, spec in tableau.derived.items()),
    )


class _Unsat(Exception):
    """Internal: two distinct constants were equated."""


class _Unifier:
    """Union-find over terms; constants win as representatives."""

    def __init__(self):
        self._parent = {}

    def find(self, term):
        root = term
        while root in self._parent:
            root = self._parent[root]
        while term in self._parent:
            self._parent[term], term = root, self._parent[term]
        return root

    def union(self, left, right):
        left, right = self.find(left), self.find(right)
        if left == right:
            return False
        if isinstance(left, Const) and isinstance(right, Const):
            # Two distinct constants: the block is unsatisfiable.
            raise _Unsat()
        if isinstance(right, Const):
            left, right = right, left
        # left is the representative (a Const when one side is).
        self._parent[right] = left
        return True

    def resolve(self, terms):
        return tuple(self.find(term) for term in terms)


class _BlockState:
    """Mutable scratch state while canonicalizing one conjunctive block."""

    def __init__(self, var_start=0, allow_special=False, oj_modes=None):
        self.atoms = []           # [(relation, [terms], existential)]
        self.builtins = []        # [(skeleton, [terms])]
        self.comparisons = []     # [domains.Cmp with Term sides]
        self.nonnull = set()
        self.schemas = {}
        self.derived = {}         # symbol -> AggregateSpec
        self.unifier = _Unifier()
        self.bag_exact = True
        self.unsat = False
        #: Canonicalize magic/supplementary regions too (scoped firing
        #: validation treats the region as a standalone query).
        self.allow_special = allow_special
        #: id(quantifier) -> "inner"/"anti" for outer joins the caller
        #: expands into disjuncts (see ``canonicalize_box``).
        self.oj_modes = oj_modes or {}
        self._next_var = var_start
        # (id(quantifier) -> {column lower -> Term}); quantifier objects are
        # kept alive in _quantifiers so ids stay unique for the call.
        self.env = {}
        self._quantifiers = []

    def fresh_var(self):
        var = Var(self._next_var)
        self._next_var += 1
        return var

    def fresh_derived_symbol(self):
        return "~agg?%d" % len(self.derived)

    def bind(self, quantifier, column_terms):
        self._quantifiers.append(quantifier)
        self.env[id(quantifier)] = column_terms

    def term_for(self, ref):
        columns = self.env.get(id(ref.quantifier))
        if columns is None:
            raise CannotCanonicalize(
                "correlated reference %s escapes the canonicalized region" % ref,
                code=Reason.FRAGMENT_CORRELATION,
            )
        term = columns.get(ref.column.lower())
        if term is None:
            raise CannotCanonicalize(
                "reference %s to a column outside the canonicalized region" % ref,
                code=Reason.FRAGMENT_CORRELATION,
            )
        return term

    def finish(self, head_terms):
        resolve = self.unifier.resolve
        atoms = tuple(
            Atom(relation, resolve(terms), existential)
            for relation, terms, existential in self.atoms
        )
        builtins = tuple(
            Builtin(skeleton, resolve(terms)) for skeleton, terms in self.builtins
        )
        nonnull = frozenset(self.unifier.find(t) for t in self.nonnull)
        comparisons, cmp_unsat = _resolve_cmps(self.comparisons, self.unifier.find)
        unsat = self.unsat or cmp_unsat
        if not unsat and comparisons:
            unsat = domains.system_of(comparisons).unsatisfiable()
        return Tableau(
            atoms=atoms,
            builtins=builtins,
            head=resolve(head_terms),
            comparisons=comparisons,
            nonnull=nonnull,
            schemas=dict(self.schemas),
            derived=dict(self.derived),
            bag_exact=self.bag_exact,
            next_var=self._next_var,
            unsatisfiable=unsat,
        )


# ---------------------------------------------------------------------------
# Expression serialization
# ---------------------------------------------------------------------------


def _serialize(expr, state, terms):
    """Render ``expr`` as a deterministic skeleton, collecting its terms.

    Column references and literals become placeholders so that the chase's
    equalities apply inside builtins too.
    """
    if isinstance(expr, qe.QParam):
        raise CannotCanonicalize(
            "prepared-statement parameter in predicate",
            code=Reason.FRAGMENT_PARAMETER,
        )
    if isinstance(expr, qe.QAggregate):
        raise CannotCanonicalize(
            "aggregate inside canonicalized expression",
            code=Reason.FRAGMENT_GROUPBY,
        )
    if isinstance(expr, qe.QColRef):
        terms.append(state.term_for(expr))
        return "§%d" % (len(terms) - 1)
    if isinstance(expr, qe.QLiteral):
        terms.append(Const(expr.value))
        return "§%d" % (len(terms) - 1)
    if isinstance(expr, qe.QUnary):
        return "%s(%s)" % (expr.op, _serialize(expr.operand, state, terms))
    if isinstance(expr, qe.QBinary):
        return "(%s %s %s)" % (
            _serialize(expr.left, state, terms),
            expr.op,
            _serialize(expr.right, state, terms),
        )
    if isinstance(expr, qe.QFunc):
        return "%s(%s)" % (
            expr.name,
            ", ".join(_serialize(arg, state, terms) for arg in expr.args),
        )
    if isinstance(expr, qe.QIsNull):
        return "(%s IS %sNULL)" % (
            _serialize(expr.operand, state, terms),
            "NOT " if expr.negated else "",
        )
    if isinstance(expr, qe.QLike):
        return "(%s %sLIKE %s)" % (
            _serialize(expr.operand, state, terms),
            "NOT " if expr.negated else "",
            _serialize(expr.pattern, state, terms),
        )
    if isinstance(expr, qe.QCase):
        parts = ["CASE"]
        for cond, value in expr.branches:
            parts.append(
                "WHEN %s THEN %s"
                % (_serialize(cond, state, terms), _serialize(value, state, terms))
            )
        if expr.default is not None:
            parts.append("ELSE %s" % _serialize(expr.default, state, terms))
        parts.append("END")
        return " ".join(parts)
    raise CannotCanonicalize(
        "unsupported expression node %r" % type(expr).__name__,
        code=Reason.FRAGMENT_EXPRESSION,
    )


def _term_of_simple(expr, state):
    """Return the term for a bare column reference or literal, else None."""
    if isinstance(expr, qe.QParam):
        raise CannotCanonicalize(
            "prepared-statement parameter in predicate",
            code=Reason.FRAGMENT_PARAMETER,
        )
    if isinstance(expr, qe.QColRef):
        return state.term_for(expr)
    if isinstance(expr, qe.QLiteral):
        return Const(expr.value)
    return None


_INTERVAL_OPS = ("<", "<=", ">", ">=", "<>", "!=")


def _absorb_predicate(predicate, state):
    for conjunct in qe.conjuncts(predicate):
        if isinstance(conjunct, qe.QBinary) and conjunct.op == "=":
            left = _term_of_simple(conjunct.left, state)
            right = _term_of_simple(conjunct.right, state)
            if left is not None and right is not None:
                if (isinstance(left, Const) and left.value is None) or (
                    isinstance(right, Const) and right.value is None
                ):
                    # ``x = NULL`` never holds: the block is empty.
                    state.unsat = True
                    continue
                try:
                    state.unifier.union(left, right)
                except _Unsat:
                    state.unsat = True
                state.nonnull.add(left)
                state.nonnull.add(right)
                continue
        if isinstance(conjunct, qe.QBinary) and conjunct.op in _INTERVAL_OPS:
            left = _term_of_simple(conjunct.left, state)
            right = _term_of_simple(conjunct.right, state)
            if left is not None and right is not None:
                # Interpreted comparison: a structured fact, not a builtin.
                # Under 3VL a true comparison grounds both operands.
                state.comparisons.extend(
                    domains.comparison_cmps(conjunct.op, left, right)
                )
                state.nonnull.add(left)
                state.nonnull.add(right)
                continue
        if isinstance(conjunct, qe.QIsNull):
            term = _term_of_simple(conjunct.operand, state)
            if term is not None:
                if isinstance(term, Const):
                    is_null = term.value is None
                    if is_null == conjunct.negated:
                        state.unsat = True
                    continue
                if conjunct.negated:
                    state.nonnull.add(term)
                    continue
        member = domains.membership(conjunct)
        if member is not None:
            operand, values = member
            term = _term_of_simple(operand, state)
            if term is not None:
                if isinstance(term, Const):
                    stripped = tuple(v for v in values if v is not None)
                    if term.value is None or term.value not in stripped:
                        state.unsat = True
                    continue
                state.comparisons.append(domains.Cmp("in", term, values))
                state.nonnull.add(term)
                continue
        terms = []
        skeleton = _serialize(conjunct, state, terms)
        state.builtins.append((skeleton, terms))


# ---------------------------------------------------------------------------
# Box flattening
# ---------------------------------------------------------------------------


def _check_plain(box, allow_special=False):
    if allow_special:
        return
    if box.is_special or box.linked_magic:
        raise CannotCanonicalize(
            "box %r belongs to a magic region" % box.name,
            code=Reason.FRAGMENT_MAGIC,
        )


def _inline_base(quantifier, box, state, existential):
    schema = box.schema
    if schema is None:
        raise CannotCanonicalize(
            "base box %r has no schema" % box.name, code=Reason.FRAGMENT_SCHEMA
        )
    relation = (box.table_name or schema.name).lower()
    terms = [state.fresh_var() for _ in schema.columns]
    state.atoms.append((relation, terms, existential))
    state.schemas[relation] = schema
    state.bind(
        quantifier,
        {
            column.name.lower(): term
            for column, term in zip(schema.columns, terms)
        },
    )


def _inline_select(quantifier, box, state, existential, skip_predicates):
    """Flatten a SELECT child referenced by ``quantifier`` into ``state``."""
    _check_plain(box, state.allow_special)
    if box.group_keys:
        raise CannotCanonicalize(
            "GROUP BY box %r" % box.name, code=Reason.FRAGMENT_GROUPBY
        )
    if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
        # Inlining counts derivations: exact multiplicities survive only
        # when the child is provably duplicate-free without enforcement.
        if not box_keys(box, ignore_enforce=True):
            state.bag_exact = False
    _inline_body(box, state, existential, skip_predicates)
    columns = {}
    for column in box.columns:
        columns[column.name.lower()] = _output_term(column, state)
    state.bind(quantifier, columns)


def _output_term(column, state):
    if column.expr is None:
        raise CannotCanonicalize(
            "output column %r has no defining expression" % column.name,
            code=Reason.FRAGMENT_EXPRESSION,
        )
    term = _term_of_simple(column.expr, state)
    if term is not None:
        if isinstance(term, Const) and term.value is None:
            return term
        return term
    # A computed output column: introduce a fresh variable defined by an
    # assignment builtin. The tableau is no longer builtin-free, which
    # (correctly) disables counterexample freezing.
    terms = [state.fresh_var()]
    skeleton = "§0 := %s" % _serialize(column.expr, state, terms)
    state.builtins.append((skeleton, terms))
    return terms[0]


# -- GROUPBY: derived atoms over aggregate specs ------------------------------


def _aggregate_spec(box, allow_special):
    """Build the :class:`AggregateSpec` of one GROUPBY box."""
    _check_plain(box, allow_special)
    foreach = box.foreach_quantifiers()
    if len(foreach) != 1 or len(box.quantifiers) != 1:
        raise CannotCanonicalize(
            "GROUPBY box %r does not range over exactly one foreach input"
            % box.name,
            code=Reason.FRAGMENT_GROUPBY,
        )
    if box.predicates:
        raise CannotCanonicalize(
            "GROUPBY box %r carries predicates" % box.name,
            code=Reason.FRAGMENT_GROUPBY,
        )
    state = _BlockState(allow_special=allow_special)
    _inline_quantifier(foreach[0], state, existential=False)
    key_terms = []
    for key in box.group_keys:
        term = _term_of_simple(key, state)
        if term is None:
            raise CannotCanonicalize(
                "computed group key %s in box %r" % (key, box.name),
                code=Reason.FRAGMENT_GROUPBY,
            )
        key_terms.append(term)
    outputs = []
    agg_terms = []
    for column in box.columns:
        expr = column.expr
        if expr is None:
            raise CannotCanonicalize(
                "output column %r of GROUPBY box %r has no expression"
                % (column.name, box.name),
                code=Reason.FRAGMENT_GROUPBY,
            )
        if isinstance(expr, qe.QAggregate):
            if expr.arg is None:
                outputs.append(("agg", expr.func.upper(), expr.distinct, "*", ()))
                continue
            terms = []
            skeleton = _serialize(expr.arg, state, terms)
            base = len(key_terms) + len(agg_terms)
            positions = tuple(range(base, base + len(terms)))
            outputs.append(
                ("agg", expr.func.upper(), expr.distinct, skeleton, positions)
            )
            agg_terms.extend(terms)
            continue
        matched = None
        for index, key in enumerate(box.group_keys):
            if qe.expr_equal(expr, key):
                matched = index
                break
        if matched is None:
            raise CannotCanonicalize(
                "output column %r of GROUPBY box %r is neither a group key "
                "nor an aggregate" % (column.name, box.name),
                code=Reason.FRAGMENT_GROUPBY,
            )
        outputs.append(("key", matched))
    core = state.finish(key_terms + agg_terms)
    return AggregateSpec(
        core=core, group_arity=len(key_terms), outputs=tuple(outputs)
    )


def _inline_groupby(quantifier, box, state, existential):
    """Represent a GROUPBY child as a derived atom over its spec."""
    spec = _aggregate_spec(box, state.allow_special)
    symbol = state.fresh_derived_symbol()
    terms = [state.fresh_var() for _ in box.columns]
    state.atoms.append((symbol, terms, existential))
    state.derived[symbol] = spec
    if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
        if not box_keys(box, ignore_enforce=True):
            state.bag_exact = False
    state.bind(
        quantifier,
        {
            column.name.lower(): term
            for column, term in zip(box.columns, terms)
        },
    )


# -- OUTERJOIN: inner conversion and two-disjunct expansion -------------------


def _outerjoin_sides(box):
    """(left, right) quantifiers of a canonical LEFT join box."""
    if (
        len(box.quantifiers) != 2
        or any(q.qtype != QuantifierType.FOREACH for q in box.quantifiers)
        or box.properties.get("preserved", "left") != "left"
    ):
        raise CannotCanonicalize(
            "OUTERJOIN box %r is not a canonical two-input LEFT join"
            % box.name,
            code=Reason.FRAGMENT_OUTERJOIN,
        )
    return box.quantifiers[0], box.quantifiers[1]


def _inner_convertible(parent_box, quantifier, skip_predicates=None):
    """True when ``parent_box``'s surviving predicates null-reject an
    output column of the OUTERJOIN child that is strict in the
    non-preserved side — NULL-padded rows cannot survive, so the join is
    semantically inner (the classical outer-to-inner simplification, fed
    by the nullflow lattice's strictness rules)."""
    from repro.analysis.dataflow.nullflow import null_rejecting_refs, strict_refs

    box = quantifier.input_box
    try:
        _, right = _outerjoin_sides(box)
    except CannotCanonicalize:
        return False
    predicates = [
        p
        for p in parent_box.predicates
        if not (skip_predicates and id(p) in skip_predicates)
    ]
    rejected = null_rejecting_refs(predicates)
    for column in box.columns:
        if (id(quantifier), column.name.lower()) not in rejected:
            continue
        if column.expr is None:
            continue
        if any(qid == id(right) for qid, _ in strict_refs(column.expr)):
            return True
    return False


def _inline_outerjoin(quantifier, box, state, existential, mode):
    """Inline an OUTERJOIN box in ``mode`` ("inner" or "anti").

    * ``inner`` — both children plus the ON condition: the padded rows
      are known (or assumed, in the matched disjunct) to be absent.
    * ``anti`` — the left child only; right-side output columns become
      NULL constants, and a ``NOMATCH`` guard builtin (fingerprinting
      the right side and the ON condition over the left row) stands for
      "no right row matched". The guard is uninterpreted, so two anti
      disjuncts only ever map onto each other when they expanded
      structurally identical joins — which is exactly the sound case.
    """
    left_q, right_q = _outerjoin_sides(box)
    _check_plain(box, state.allow_special)
    _inline_quantifier(left_q, state, existential)
    if mode == "inner":
        _inline_quantifier(right_q, state, existential)
        for predicate in box.predicates:
            _absorb_predicate(predicate, state)
    else:
        fingerprint = _region_fingerprint(right_q.input_box, state)
        marker_env = {
            name.lower(): Const(_RightMark(name.lower()))
            for name in right_q.output_column_names()
        }
        state.bind(right_q, marker_env)
        terms = []
        condition = " AND ".join(
            _serialize(conjunct, state, terms)
            for predicate in box.predicates
            for conjunct in qe.conjuncts(predicate)
        )
        state.builtins.append(
            ("NOMATCH{%s}[%s]" % (fingerprint, condition), terms)
        )
        state.bind(
            right_q,
            {name.lower(): Const(None) for name in right_q.output_column_names()},
        )
    if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
        if not box_keys(box, ignore_enforce=True):
            state.bag_exact = False
    if quantifier is not None:
        columns = {}
        for column in box.columns:
            columns[column.name.lower()] = _output_term(column, state)
        state.bind(quantifier, columns)


def _region_fingerprint(box, state):
    """Deterministic fingerprint of a standalone region (for NOMATCH)."""
    try:
        query = canonicalize_box(box, allow_special=state.allow_special)
    except CannotCanonicalize as exc:
        raise CannotCanonicalize(
            "LEFT JOIN right side %r cannot be fingerprinted: %s"
            % (box.name, exc.reason),
            code=Reason.FRAGMENT_OUTERJOIN,
        )
    return "∪".join(_tableau_fingerprint(t) for t in query.disjuncts)


def _expandable_outerjoins(box, skip_predicates=None):
    """FOREACH outer-join children that need two-disjunct expansion."""
    out = []
    for quantifier in box.quantifiers:
        if (
            quantifier.qtype == QuantifierType.FOREACH
            and quantifier.input_box.kind == BoxKind.OUTERJOIN
            and not _inner_convertible(box, quantifier, skip_predicates)
        ):
            out.append(quantifier)
    return out


def _inline_body(box, state, existential, skip_predicates=None):
    """Absorb ``box``'s quantifiers and predicates into ``state``."""
    for quantifier in box.quantifiers:
        _inline_quantifier(
            quantifier, state, existential, skip_predicates, parent=box
        )
    for predicate in box.predicates:
        if skip_predicates and id(predicate) in skip_predicates:
            continue
        _absorb_predicate(predicate, state)


def _inline_quantifier(
    quantifier, state, existential, skip_predicates=None, parent=None
):
    """Dispatch one quantifier's child box into ``state``."""
    if quantifier.is_magic and not state.allow_special:
        raise CannotCanonicalize(
            "magic quantifier %r" % quantifier.name, code=Reason.FRAGMENT_MAGIC
        )
    if quantifier.qtype == QuantifierType.FOREACH:
        child_existential = existential
    elif quantifier.qtype == QuantifierType.EXISTENTIAL:
        child_existential = True
    else:
        raise CannotCanonicalize(
            "%s quantifier %r" % (quantifier.qtype, quantifier.name),
            code=Reason.FRAGMENT_SUBQUERY,
        )
    child = quantifier.input_box
    if child.kind == BoxKind.BASE:
        _inline_base(quantifier, child, state, child_existential)
    elif child.kind == BoxKind.SELECT:
        _inline_select(
            quantifier, child, state, child_existential, skip_predicates
        )
    elif child.kind == BoxKind.GROUPBY:
        _inline_groupby(quantifier, child, state, child_existential)
    elif child.kind == BoxKind.OUTERJOIN:
        mode = state.oj_modes.get(id(quantifier))
        if mode is None:
            if parent is not None and _inner_convertible(
                parent, quantifier, skip_predicates
            ):
                mode = "inner"
            else:
                raise CannotCanonicalize(
                    "LEFT JOIN %r is not null-rejected by its consumer"
                    % child.name,
                    code=Reason.FRAGMENT_OUTERJOIN,
                )
        _inline_outerjoin(quantifier, child, state, child_existential, mode)
    else:
        raise CannotCanonicalize(
            "%s box %r under a SELECT" % (child.kind, child.name),
            code=Reason.FRAGMENT_SETOP,
        )
    if quantifier.selector_predicates:
        raise CannotCanonicalize(
            "decorrelated selector predicates on %r" % quantifier.name,
            code=Reason.FRAGMENT_SUBQUERY,
        )


def _tableau_for_select(
    box, skip_predicates=None, head_extra=None, allow_special=False, oj_modes=None
):
    """Canonicalize one SELECT box into a tableau.

    ``head_extra`` is a list of column references appended to the head —
    used by the implied-predicate probe to observe whether the chase
    equates two columns.
    """
    _check_plain(box, allow_special)
    if box.kind != BoxKind.SELECT:
        raise CannotCanonicalize(
            "box %r is %s, not SELECT" % (box.name, box.kind),
            code=Reason.FRAGMENT_OTHER,
        )
    if box.group_keys:
        raise CannotCanonicalize(
            "GROUP BY box %r" % box.name, code=Reason.FRAGMENT_GROUPBY
        )
    state = _BlockState(allow_special=allow_special, oj_modes=oj_modes)
    _inline_body(box, state, existential=False, skip_predicates=skip_predicates)
    head = [_output_term(column, state) for column in box.columns]
    if head_extra:
        head.extend(state.term_for(ref) for ref in head_extra)
    if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
        if not box_keys(box, ignore_enforce=True):
            state.bag_exact = False
    return state.finish(head)


def _tableau_for_base(box):
    state = _BlockState()
    schema = box.schema
    if schema is None:
        raise CannotCanonicalize(
            "base box %r has no schema" % box.name, code=Reason.FRAGMENT_SCHEMA
        )
    relation = (box.table_name or schema.name).lower()
    terms = [state.fresh_var() for _ in schema.columns]
    state.atoms.append((relation, terms, False))
    state.schemas[relation] = schema
    return state.finish(terms)


def _tableau_for_groupby(box, allow_special):
    """A top-level GROUPBY box: a single derived atom, all columns out."""
    state = _BlockState(allow_special=allow_special)
    spec = _aggregate_spec(box, allow_special)
    symbol = state.fresh_derived_symbol()
    terms = [state.fresh_var() for _ in box.columns]
    state.atoms.append((symbol, terms, False))
    state.derived[symbol] = spec
    return state.finish(terms)


def _tableau_for_outerjoin(box, mode, allow_special):
    state = _BlockState(allow_special=allow_special)
    _inline_outerjoin(None, box, state, existential=False, mode=mode)
    head = [_output_term(column, state) for column in box.columns]
    return state.finish(head)


def _select_disjuncts(box, allow_special, max_disjuncts):
    """One tableau per outer-join expansion choice (usually just one)."""
    expand = _expandable_outerjoins(box)
    if not expand:
        return [_tableau_for_select(box, allow_special=allow_special)]
    if 2 ** len(expand) > max_disjuncts:
        raise CannotCanonicalize(
            "%d outer joins expand past the disjunct budget" % len(expand),
            code=Reason.FRAGMENT_OUTERJOIN,
        )
    disjuncts = []
    for modes in itertools.product(("inner", "anti"), repeat=len(expand)):
        oj_modes = {
            id(quantifier): mode for quantifier, mode in zip(expand, modes)
        }
        disjuncts.append(
            _tableau_for_select(
                box, allow_special=allow_special, oj_modes=oj_modes
            )
        )
    return disjuncts


def canonicalize_box(box, max_disjuncts=8, allow_special=False):
    """Canonicalize ``box`` into a :class:`CanonicalQuery`.

    Accepts SELECT, BASE, GROUPBY and OUTERJOIN boxes, and UNION boxes
    whose inputs are such boxes (a union of conjunctive queries). Raises
    :class:`CannotCanonicalize` for everything else. ``allow_special``
    additionally admits magic/supplementary regions — sound only when
    the caller compares the region as a standalone query (scoped firing
    validation), never inside a whole-graph reading.
    """
    _check_plain(box, allow_special)
    if box.kind == BoxKind.SELECT:
        disjuncts = _select_disjuncts(box, allow_special, max_disjuncts)
    elif box.kind == BoxKind.BASE:
        disjuncts = [_tableau_for_base(box)]
    elif box.kind == BoxKind.GROUPBY:
        disjuncts = [_tableau_for_groupby(box, allow_special)]
    elif box.kind == BoxKind.OUTERJOIN:
        disjuncts = [
            _tableau_for_outerjoin(box, "inner", allow_special),
            _tableau_for_outerjoin(box, "anti", allow_special),
        ]
    elif box.kind == BoxKind.UNION:
        disjuncts = []
        for quantifier in box.quantifiers:
            if quantifier.qtype != QuantifierType.FOREACH:
                raise CannotCanonicalize(
                    "%s quantifier under UNION" % quantifier.qtype,
                    code=Reason.FRAGMENT_UNION,
                )
            child = quantifier.input_box
            if child.kind == BoxKind.SELECT:
                disjuncts.extend(
                    _select_disjuncts(child, allow_special, max_disjuncts)
                )
            elif child.kind == BoxKind.BASE:
                disjuncts.append(_tableau_for_base(child))
            elif child.kind == BoxKind.GROUPBY:
                disjuncts.append(_tableau_for_groupby(child, allow_special))
            else:
                raise CannotCanonicalize(
                    "%s box %r under UNION" % (child.kind, child.name),
                    code=Reason.FRAGMENT_UNION,
                )
        if len(disjuncts) > max_disjuncts:
            raise CannotCanonicalize(
                "union width %d exceeds the disjunct budget" % len(disjuncts),
                code=Reason.FRAGMENT_UNION,
            )
        arities = {len(tableau.head) for tableau in disjuncts}
        if len(arities) > 1:
            raise CannotCanonicalize(
                "union inputs disagree on arity", code=Reason.FRAGMENT_UNION
            )
    else:
        raise CannotCanonicalize(
            "cannot canonicalize %s box %r" % (box.kind, box.name),
            code=Reason.FRAGMENT_SETOP
            if box.kind in (BoxKind.INTERSECT, BoxKind.EXCEPT)
            else Reason.FRAGMENT_OTHER,
        )

    duplicate_free = box.distinct == DistinctMode.ENFORCE or is_duplicate_free(box)
    bag_exact = all(tableau.bag_exact for tableau in disjuncts)
    if box.kind == BoxKind.UNION:
        # UNION ALL sums multiplicities; with ENFORCE/PERMIT the exact bag
        # is only determined when duplicate-freeness needs no enforcement.
        if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
            bag_exact = bag_exact and bool(box_keys(box, ignore_enforce=True))
    arity = len(box.columns) if box.columns else (
        len(disjuncts[0].head) if disjuncts else 0
    )
    return CanonicalQuery(
        disjuncts=disjuncts,
        duplicate_free=duplicate_free,
        bag_exact=bag_exact,
        arity=arity,
    )


def canonicalize_graph(graph, max_disjuncts=8):
    """Canonicalize a whole query graph (its top box)."""
    if graph.top_box is None:
        raise CannotCanonicalize("graph has no top box")
    if graph.limit is not None:
        raise CannotCanonicalize(
            "LIMIT changes which rows survive", code=Reason.FRAGMENT_LIMIT
        )
    return canonicalize_box(graph.top_box, max_disjuncts=max_disjuncts)


def probe_implied_equality(box, predicate):
    """Canonicalize ``box`` *without* ``predicate``, exposing the two sides
    of the (simple) equality as extra head columns.

    Returns ``(tableau, left_index, right_index)`` — after chasing the
    tableau, the predicate is dependency-implied iff the two extra head
    terms are equal. Returns None when ``predicate`` is not a simple
    equality between column references.
    """
    sides = qe.equality_sides(predicate)
    if sides is None:
        return None
    tableau = _tableau_for_select(
        box, skip_predicates={id(predicate)}, head_extra=list(sides)
    )
    return tableau, len(tableau.head) - 2, len(tableau.head) - 1


__all__ = [
    "AggregateSpec",
    "Atom",
    "Builtin",
    "CannotCanonicalize",
    "CanonicalQuery",
    "Const",
    "Tableau",
    "Term",
    "Var",
    "canonicalize_box",
    "canonicalize_graph",
    "probe_implied_equality",
]
