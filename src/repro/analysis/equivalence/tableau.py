"""Canonicalization of QGM regions into tableaux (conjunctive queries).

A *tableau* is the classical representation used by chase-based
containment tests: a set of atoms over base tables whose arguments are
variables and constants, a conjunction of uninterpreted *builtin*
predicates for everything that is not an equality, and a head (the output
row). ``canonicalize_box`` flattens a SELECT box — recursively inlining
quantifiers that range over other SELECT boxes or BASE boxes — into one
tableau, and a top-level UNION of such blocks into a list of tableaux
(a union of conjunctive queries).

Anything outside that fragment (GROUPBY, INTERSECT/EXCEPT, OUTERJOIN,
magic/supplementary boxes, scalar or anti quantifiers, parameters,
aggregates, correlation into an uncanonicalized scope, LIMIT) raises
:class:`CannotCanonicalize`; callers translate that into the ``UNKNOWN``
verdict. Refusing to canonicalize is always safe — the checker never
guesses.

Multiplicity bookkeeping
------------------------

SQL is a bag language, so each tableau tracks whether its multiplicities
are *exactly* those of the canonical conjunctive query:

* a ``foreach`` atom contributes one result row per matching base row;
* an ``existential`` atom (from an E quantifier) only filters;
* inlining a DISTINCT (ENFORCE) or PERMIT child whose duplicate-freeness
  is not provable loses exactness (``bag_exact=False``) but keeps the
  set-level reading, which is still enough for set equivalence of
  duplicate-free queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.qgm import expr as qe
from repro.qgm.keys import box_keys, is_duplicate_free
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType


class CannotCanonicalize(Exception):
    """The region uses a feature outside the conjunctive fragment."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


class Term:
    """Base class for tableau terms."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Term):
    """A labelled null. Identity is the numeric id."""

    vid: int

    def __repr__(self):
        return "X%d" % self.vid


@dataclass(frozen=True)
class Const(Term):
    """A concrete value (``None`` is SQL NULL)."""

    value: object

    def __repr__(self):
        return "c(%r)" % (self.value,)


@dataclass(frozen=True)
class Atom:
    """``relation(terms)``; ``existential`` atoms filter but do not
    multiply (they come from E quantifiers or from chase steps)."""

    relation: str
    terms: Tuple[Term, ...]
    existential: bool = False

    def __repr__(self):
        flag = "?" if self.existential else ""
        return "%s%s(%s)" % (
            flag, self.relation, ", ".join(repr(t) for t in self.terms)
        )


@dataclass(frozen=True)
class Builtin:
    """An uninterpreted predicate: a serialized expression skeleton whose
    term positions are placeholders ``§0 .. §n`` into ``terms``."""

    skeleton: str
    terms: Tuple[Term, ...]

    def __repr__(self):
        return "[%s | %s]" % (self.skeleton, ", ".join(repr(t) for t in self.terms))


@dataclass
class Tableau:
    """One conjunctive block.

    ``nonnull`` lists terms the block's own predicates force to be
    non-NULL (SQL equality never holds on NULL). ``schemas`` maps each
    atom relation to its :class:`~repro.catalog.schema.TableSchema`.
    """

    atoms: Tuple[Atom, ...]
    builtins: Tuple[Builtin, ...]
    head: Tuple[Term, ...]
    nonnull: FrozenSet[Term] = frozenset()
    schemas: Dict[str, object] = field(default_factory=dict)
    bag_exact: bool = True
    next_var: int = 0
    chase_complete: bool = True
    unsatisfiable: bool = False

    def has_builtins(self):
        return bool(self.builtins)


@dataclass
class CanonicalQuery:
    """A union of conjunctive blocks plus top-level duplicate bookkeeping."""

    disjuncts: List[Tableau]
    duplicate_free: bool
    bag_exact: bool
    arity: int


class _Unsat(Exception):
    """Internal: two distinct constants were equated."""


class _Unifier:
    """Union-find over terms; constants win as representatives."""

    def __init__(self):
        self._parent = {}

    def find(self, term):
        root = term
        while root in self._parent:
            root = self._parent[root]
        while term in self._parent:
            self._parent[term], term = root, self._parent[term]
        return root

    def union(self, left, right):
        left, right = self.find(left), self.find(right)
        if left == right:
            return False
        if isinstance(left, Const) and isinstance(right, Const):
            # Two distinct constants: the block is unsatisfiable.
            raise _Unsat()
        if isinstance(right, Const):
            left, right = right, left
        # left is the representative (a Const when one side is).
        self._parent[right] = left
        return True

    def resolve(self, terms):
        return tuple(self.find(term) for term in terms)


class _BlockState:
    """Mutable scratch state while canonicalizing one conjunctive block."""

    def __init__(self, var_start=0):
        self.atoms = []           # [(relation, [terms], existential)]
        self.builtins = []        # [(skeleton, [terms])]
        self.nonnull = set()
        self.schemas = {}
        self.unifier = _Unifier()
        self.bag_exact = True
        self.unsat = False
        self._next_var = var_start
        # (id(quantifier) -> {column lower -> Term}); quantifier objects are
        # kept alive in _quantifiers so ids stay unique for the call.
        self.env = {}
        self._quantifiers = []

    def fresh_var(self):
        var = Var(self._next_var)
        self._next_var += 1
        return var

    def bind(self, quantifier, column_terms):
        self._quantifiers.append(quantifier)
        self.env[id(quantifier)] = column_terms

    def term_for(self, ref):
        columns = self.env.get(id(ref.quantifier))
        if columns is None:
            raise CannotCanonicalize(
                "correlated reference %s escapes the canonicalized region" % ref
            )
        term = columns.get(ref.column.lower())
        if term is None:
            raise CannotCanonicalize(
                "reference %s to a column outside the canonicalized region" % ref
            )
        return term

    def finish(self, head_terms):
        resolve = self.unifier.resolve
        atoms = tuple(
            Atom(relation, resolve(terms), existential)
            for relation, terms, existential in self.atoms
        )
        builtins = tuple(
            Builtin(skeleton, resolve(terms)) for skeleton, terms in self.builtins
        )
        nonnull = frozenset(self.unifier.find(t) for t in self.nonnull)
        return Tableau(
            atoms=atoms,
            builtins=builtins,
            head=resolve(head_terms),
            nonnull=nonnull,
            schemas=dict(self.schemas),
            bag_exact=self.bag_exact,
            next_var=self._next_var,
            unsatisfiable=self.unsat,
        )


# ---------------------------------------------------------------------------
# Expression serialization
# ---------------------------------------------------------------------------


def _serialize(expr, state, terms):
    """Render ``expr`` as a deterministic skeleton, collecting its terms.

    Column references and literals become placeholders so that the chase's
    equalities apply inside builtins too.
    """
    if isinstance(expr, qe.QParam):
        raise CannotCanonicalize("prepared-statement parameter in predicate")
    if isinstance(expr, qe.QAggregate):
        raise CannotCanonicalize("aggregate inside canonicalized expression")
    if isinstance(expr, qe.QColRef):
        terms.append(state.term_for(expr))
        return "§%d" % (len(terms) - 1)
    if isinstance(expr, qe.QLiteral):
        terms.append(Const(expr.value))
        return "§%d" % (len(terms) - 1)
    if isinstance(expr, qe.QUnary):
        return "%s(%s)" % (expr.op, _serialize(expr.operand, state, terms))
    if isinstance(expr, qe.QBinary):
        return "(%s %s %s)" % (
            _serialize(expr.left, state, terms),
            expr.op,
            _serialize(expr.right, state, terms),
        )
    if isinstance(expr, qe.QFunc):
        return "%s(%s)" % (
            expr.name,
            ", ".join(_serialize(arg, state, terms) for arg in expr.args),
        )
    if isinstance(expr, qe.QIsNull):
        return "(%s IS %sNULL)" % (
            _serialize(expr.operand, state, terms),
            "NOT " if expr.negated else "",
        )
    if isinstance(expr, qe.QLike):
        return "(%s %sLIKE %s)" % (
            _serialize(expr.operand, state, terms),
            "NOT " if expr.negated else "",
            _serialize(expr.pattern, state, terms),
        )
    if isinstance(expr, qe.QCase):
        parts = ["CASE"]
        for cond, value in expr.branches:
            parts.append(
                "WHEN %s THEN %s"
                % (_serialize(cond, state, terms), _serialize(value, state, terms))
            )
        if expr.default is not None:
            parts.append("ELSE %s" % _serialize(expr.default, state, terms))
        parts.append("END")
        return " ".join(parts)
    raise CannotCanonicalize(
        "unsupported expression node %r" % type(expr).__name__
    )


def _term_of_simple(expr, state):
    """Return the term for a bare column reference or literal, else None."""
    if isinstance(expr, qe.QParam):
        raise CannotCanonicalize("prepared-statement parameter in predicate")
    if isinstance(expr, qe.QColRef):
        return state.term_for(expr)
    if isinstance(expr, qe.QLiteral):
        return Const(expr.value)
    return None


def _absorb_predicate(predicate, state):
    for conjunct in qe.conjuncts(predicate):
        if isinstance(conjunct, qe.QBinary) and conjunct.op == "=":
            left = _term_of_simple(conjunct.left, state)
            right = _term_of_simple(conjunct.right, state)
            if left is not None and right is not None:
                if (isinstance(left, Const) and left.value is None) or (
                    isinstance(right, Const) and right.value is None
                ):
                    # ``x = NULL`` never holds: the block is empty.
                    state.unsat = True
                    continue
                try:
                    state.unifier.union(left, right)
                except _Unsat:
                    state.unsat = True
                state.nonnull.add(left)
                state.nonnull.add(right)
                continue
        if isinstance(conjunct, qe.QIsNull) and conjunct.negated:
            term = _term_of_simple(conjunct.operand, state)
            if term is not None:
                state.nonnull.add(term)
                continue
        terms = []
        skeleton = _serialize(conjunct, state, terms)
        state.builtins.append((skeleton, terms))


# ---------------------------------------------------------------------------
# Box flattening
# ---------------------------------------------------------------------------


def _check_plain(box):
    if box.is_special or box.linked_magic:
        raise CannotCanonicalize(
            "box %r belongs to a magic region" % box.name
        )


def _inline_base(quantifier, box, state, existential):
    schema = box.schema
    if schema is None:
        raise CannotCanonicalize("base box %r has no schema" % box.name)
    relation = (box.table_name or schema.name).lower()
    terms = [state.fresh_var() for _ in schema.columns]
    state.atoms.append((relation, terms, existential))
    state.schemas[relation] = schema
    state.bind(
        quantifier,
        {
            column.name.lower(): term
            for column, term in zip(schema.columns, terms)
        },
    )


def _inline_select(quantifier, box, state, existential, skip_predicates):
    """Flatten a SELECT child referenced by ``quantifier`` into ``state``."""
    _check_plain(box)
    if box.group_keys:
        raise CannotCanonicalize("GROUP BY box %r" % box.name)
    if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
        # Inlining counts derivations: exact multiplicities survive only
        # when the child is provably duplicate-free without enforcement.
        if not box_keys(box, ignore_enforce=True):
            state.bag_exact = False
    _inline_body(box, state, existential, skip_predicates)
    columns = {}
    for column in box.columns:
        columns[column.name.lower()] = _output_term(column, state)
    state.bind(quantifier, columns)


def _output_term(column, state):
    if column.expr is None:
        raise CannotCanonicalize(
            "output column %r has no defining expression" % column.name
        )
    term = _term_of_simple(column.expr, state)
    if term is not None:
        if isinstance(term, Const) and term.value is None:
            return term
        return term
    # A computed output column: introduce a fresh variable defined by an
    # assignment builtin. The tableau is no longer builtin-free, which
    # (correctly) disables counterexample freezing.
    terms = [state.fresh_var()]
    skeleton = "§0 := %s" % _serialize(column.expr, state, terms)
    state.builtins.append((skeleton, terms))
    return terms[0]


def _inline_body(box, state, existential, skip_predicates=None):
    """Absorb ``box``'s quantifiers and predicates into ``state``."""
    for quantifier in box.quantifiers:
        if quantifier.is_magic:
            raise CannotCanonicalize("magic quantifier %r" % quantifier.name)
        if quantifier.qtype == QuantifierType.FOREACH:
            child_existential = existential
        elif quantifier.qtype == QuantifierType.EXISTENTIAL:
            child_existential = True
        else:
            raise CannotCanonicalize(
                "%s quantifier %r" % (quantifier.qtype, quantifier.name)
            )
        child = quantifier.input_box
        if child.kind == BoxKind.BASE:
            _inline_base(quantifier, child, state, child_existential)
        elif child.kind == BoxKind.SELECT:
            _inline_select(
                quantifier, child, state, child_existential, skip_predicates
            )
        else:
            raise CannotCanonicalize(
                "%s box %r under a SELECT" % (child.kind, child.name)
            )
        if quantifier.selector_predicates:
            raise CannotCanonicalize(
                "decorrelated selector predicates on %r" % quantifier.name
            )
    for predicate in box.predicates:
        if skip_predicates and id(predicate) in skip_predicates:
            continue
        _absorb_predicate(predicate, state)


def _tableau_for_select(box, skip_predicates=None, head_extra=None):
    """Canonicalize one SELECT box into a tableau.

    ``head_extra`` is a list of column references appended to the head —
    used by the implied-predicate probe to observe whether the chase
    equates two columns.
    """
    _check_plain(box)
    if box.kind != BoxKind.SELECT:
        raise CannotCanonicalize("box %r is %s, not SELECT" % (box.name, box.kind))
    if box.group_keys:
        raise CannotCanonicalize("GROUP BY box %r" % box.name)
    state = _BlockState()
    _inline_body(box, state, existential=False, skip_predicates=skip_predicates)
    head = [_output_term(column, state) for column in box.columns]
    if head_extra:
        head.extend(state.term_for(ref) for ref in head_extra)
    if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
        if not box_keys(box, ignore_enforce=True):
            state.bag_exact = False
    return state.finish(head)


def _tableau_for_base(box):
    state = _BlockState()
    schema = box.schema
    if schema is None:
        raise CannotCanonicalize("base box %r has no schema" % box.name)
    relation = (box.table_name or schema.name).lower()
    terms = [state.fresh_var() for _ in schema.columns]
    state.atoms.append((relation, terms, False))
    state.schemas[relation] = schema
    return state.finish(terms)


def canonicalize_box(box, max_disjuncts=8):
    """Canonicalize ``box`` into a :class:`CanonicalQuery`.

    Accepts SELECT boxes, BASE boxes, and UNION boxes whose inputs are
    SELECT/BASE boxes (a union of conjunctive queries). Raises
    :class:`CannotCanonicalize` for everything else.
    """
    _check_plain(box)
    if box.kind == BoxKind.SELECT:
        disjuncts = [_tableau_for_select(box)]
    elif box.kind == BoxKind.BASE:
        disjuncts = [_tableau_for_base(box)]
    elif box.kind == BoxKind.UNION:
        disjuncts = []
        for quantifier in box.quantifiers:
            if quantifier.qtype != QuantifierType.FOREACH:
                raise CannotCanonicalize(
                    "%s quantifier under UNION" % quantifier.qtype
                )
            child = quantifier.input_box
            if child.kind == BoxKind.SELECT:
                disjuncts.append(_tableau_for_select(child))
            elif child.kind == BoxKind.BASE:
                disjuncts.append(_tableau_for_base(child))
            else:
                raise CannotCanonicalize(
                    "%s box %r under UNION" % (child.kind, child.name)
                )
        if len(disjuncts) > max_disjuncts:
            raise CannotCanonicalize(
                "union width %d exceeds the disjunct budget" % len(disjuncts)
            )
        arities = {len(tableau.head) for tableau in disjuncts}
        if len(arities) > 1:
            raise CannotCanonicalize("union inputs disagree on arity")
    else:
        raise CannotCanonicalize("cannot canonicalize %s box %r" % (box.kind, box.name))

    duplicate_free = box.distinct == DistinctMode.ENFORCE or is_duplicate_free(box)
    bag_exact = all(tableau.bag_exact for tableau in disjuncts)
    if box.kind == BoxKind.UNION:
        # UNION ALL sums multiplicities; with ENFORCE/PERMIT the exact bag
        # is only determined when duplicate-freeness needs no enforcement.
        if box.distinct in (DistinctMode.ENFORCE, DistinctMode.PERMIT):
            bag_exact = bag_exact and bool(box_keys(box, ignore_enforce=True))
    arity = len(box.columns) if box.columns else (
        len(disjuncts[0].head) if disjuncts else 0
    )
    return CanonicalQuery(
        disjuncts=disjuncts,
        duplicate_free=duplicate_free,
        bag_exact=bag_exact,
        arity=arity,
    )


def canonicalize_graph(graph, max_disjuncts=8):
    """Canonicalize a whole query graph (its top box)."""
    if graph.top_box is None:
        raise CannotCanonicalize("graph has no top box")
    if graph.limit is not None:
        raise CannotCanonicalize("LIMIT changes which rows survive")
    return canonicalize_box(graph.top_box, max_disjuncts=max_disjuncts)


def probe_implied_equality(box, predicate):
    """Canonicalize ``box`` *without* ``predicate``, exposing the two sides
    of the (simple) equality as extra head columns.

    Returns ``(tableau, left_index, right_index)`` — after chasing the
    tableau, the predicate is dependency-implied iff the two extra head
    terms are equal. Returns None when ``predicate`` is not a simple
    equality between column references.
    """
    sides = qe.equality_sides(predicate)
    if sides is None:
        return None
    tableau = _tableau_for_select(
        box, skip_predicates={id(predicate)}, head_extra=list(sides)
    )
    return tableau, len(tableau.head) - 2, len(tableau.head) - 1


__all__ = [
    "Atom",
    "Builtin",
    "CannotCanonicalize",
    "CanonicalQuery",
    "Const",
    "Tableau",
    "Term",
    "Var",
    "canonicalize_box",
    "canonicalize_graph",
    "probe_implied_equality",
]
