"""Embedded dependencies harvested from catalog declarations.

Two families feed the chase:

* **Functional dependencies** (equality-generating): every PRIMARY KEY or
  UNIQUE declaration ``K`` of table ``T`` yields ``T: K -> all columns``.
  SQL's UNIQUE admits multiple NULL key values, so a key only yields a
  sound FD when every key column is declared NOT NULL — otherwise two
  distinct rows may "agree" on the key in the labelled-null reading while
  disagreeing in a real database.

* **Inclusion dependencies** (tuple-generating): every FOREIGN KEY whose
  referenced columns cover a declared key of the parent yields
  ``child[cols] ⊆ parent[ref_cols]``. A nullable FK column makes the
  inclusion conditional (rows with NULL are exempt), so such INDs are
  excluded from the proving set and kept in ``repair_inds``: they are
  still *satisfiable* constraints any real database obeys on its non-NULL
  rows, which is exactly what the counterexample repair chase needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class FunctionalDependency:
    """``table``: the columns at ``determinant`` ordinals determine the
    whole row (key-based, so the dependent set is every column)."""

    table: str
    determinant: Tuple[int, ...]


@dataclass(frozen=True)
class InclusionDependency:
    """``child`` values at ``child_cols`` appear in ``parent`` at
    ``parent_cols`` (which cover a key of the parent)."""

    child: str
    child_cols: Tuple[int, ...]
    parent: str
    parent_cols: Tuple[int, ...]


@dataclass
class DependencySet:
    """All dependencies of a catalog, indexed for the chase."""

    fds: Dict[str, List[FunctionalDependency]] = field(default_factory=dict)
    inds: Dict[str, List[InclusionDependency]] = field(default_factory=dict)
    #: INDs that hold only for rows with non-NULL FK values; used by the
    #: counterexample repair chase, never to prove equivalence.
    repair_inds: Dict[str, List[InclusionDependency]] = field(default_factory=dict)
    schemas: Dict[str, object] = field(default_factory=dict)

    def is_empty(self):
        return not (self.fds or self.inds or self.repair_inds)

    def keyed_tables(self):
        """Tables with at least one usable FD (identical atoms over them
        denote the same row and may be merged without changing the bag)."""
        return set(self.fds)


def dependencies_from_catalog(catalog):
    """Collect the sound dependency set declared by ``catalog``."""
    deps = DependencySet()
    if catalog is None:
        return deps
    schemas = {schema.name.lower(): schema for schema in catalog.tables()}
    deps.schemas = schemas
    for name, schema in schemas.items():
        not_null = schema.not_null_columns()
        for key in schema.all_keys():
            if not all(column.lower() in not_null for column in key):
                continue
            fd = FunctionalDependency(
                table=name,
                determinant=tuple(
                    sorted(schema.column_ordinal(column) for column in key)
                ),
            )
            deps.fds.setdefault(name, []).append(fd)
        for fk in schema.foreign_keys:
            parent = schemas.get(fk.ref_table.lower())
            if parent is None:
                continue
            if not all(parent.has_column(column) for column in fk.ref_columns):
                continue
            if not parent.is_unique_on(fk.ref_columns):
                # A FK must target a key for the chase's tgd to be sound
                # (one parent row per child value); skip otherwise.
                continue
            ind = InclusionDependency(
                child=name,
                child_cols=tuple(
                    schema.column_ordinal(column) for column in fk.columns
                ),
                parent=fk.ref_table.lower(),
                parent_cols=tuple(
                    parent.column_ordinal(column) for column in fk.ref_columns
                ),
            )
            if all(column.lower() in not_null for column in fk.columns):
                deps.inds.setdefault(name, []).append(ind)
            else:
                deps.repair_inds.setdefault(name, []).append(ind)
    return deps


__all__ = [
    "DependencySet",
    "FunctionalDependency",
    "InclusionDependency",
    "dependencies_from_catalog",
]
