"""Budgeted homomorphism search between tableaux.

The classical test: ``Q1 ⊑_Σ Q2`` iff there is a homomorphism from Q2's
tableau into ``chase_Σ(Q1)`` that fixes the head. The search here is a
plain backtracking matcher with three outcomes — found / definitely none /
budget exhausted — because translation validation must never confuse
"I gave up" with "there is none".

``require_iso=True`` asks for a bijection that also respects the
foreach/existential flag, builtins and non-null obligations: an
isomorphism of chased, ``bag_exact`` tableaux certifies *multiset*
equivalence, which is what lets the checker bless rewrites of boxes that
are not duplicate-free.
"""

from __future__ import annotations

from repro.analysis.equivalence import domains
from repro.analysis.equivalence.tableau import Builtin, Const

HOM_FOUND = "found"
HOM_NONE = "none"
HOM_BUDGET = "budget"


def _map_cmp(cmp, mapping):
    """Image of a comparison fact under a term mapping, or None when a
    variable side is not covered by the mapping."""

    def side(term):
        if isinstance(term, domains.Val):
            return term
        image = mapping.get(term)
        if image is None:
            return None
        if isinstance(image, Const):
            return domains.Val(image.value)
        return image

    left = side(cmp.left)
    if left is None:
        return None
    if cmp.op == "in":
        return domains.Cmp("in", left, cmp.right)
    right = side(cmp.right)
    if right is None:
        return None
    return domains.Cmp(cmp.op, left, right)


class _Budget(Exception):
    """Raised when the node budget is exhausted."""


def effective_nonnull(tableau):
    """Terms guaranteed non-NULL in ``tableau``: explicit obligations,
    non-NULL constants, and terms sitting in a declared NOT NULL column
    of some atom."""
    out = set(tableau.nonnull)
    for atom in tableau.atoms:
        schema = tableau.schemas.get(atom.relation)
        if schema is None:
            continue
        not_null = schema.not_null_columns()
        for column, term in zip(schema.columns, atom.terms):
            if column.name.lower() in not_null:
                out.add(term)
    for atom in tableau.atoms:
        for term in atom.terms:
            if isinstance(term, Const) and term.value is not None:
                out.add(term)
    for term in tableau.head:
        if isinstance(term, Const) and term.value is not None:
            out.add(term)
    return out


def _bind(mapping, inverse, src_term, dst_term):
    """Extend ``mapping`` with ``src_term -> dst_term``; None on conflict.

    Returns the list of keys added (for undo), or None when inconsistent.
    ``inverse`` is maintained only when injectivity is required.
    """
    added = []
    if isinstance(src_term, Const):
        if src_term != dst_term:
            return None
        return added
    if inverse is not None and isinstance(dst_term, Const):
        # An isomorphism renames variables onto variables; a variable
        # landing on a constant means one side is strictly more
        # constrained (e.g. an extra literal filter), not equivalent.
        return None
    bound = mapping.get(src_term)
    if bound is not None:
        if bound != dst_term:
            return None
        return added
    if inverse is not None:
        holder = inverse.get(dst_term)
        if holder is not None and holder != src_term:
            return None
        inverse[dst_term] = src_term
    mapping[src_term] = dst_term
    added.append(src_term)
    return added


def _unbind(mapping, inverse, added):
    for key in added:
        dst = mapping.pop(key)
        if inverse is not None:
            inverse.pop(dst, None)


def find_homomorphism(src, dst, budget, atoms_only=False, require_iso=False):
    """Search for a head-fixing homomorphism ``src -> dst``.

    Returns ``(status, mapping)`` with status one of :data:`HOM_FOUND`,
    :data:`HOM_NONE`, :data:`HOM_BUDGET`. With ``atoms_only`` the builtin
    and non-null obligations of ``src`` are ignored (used when proving
    that *no* variant of the witness row can be produced).
    """
    if len(src.head) != len(dst.head):
        return HOM_NONE, None
    if require_iso and len(src.atoms) != len(dst.atoms):
        return HOM_NONE, None

    mapping = {}
    inverse = {} if require_iso else None
    for src_term, dst_term in zip(src.head, dst.head):
        if _bind(mapping, inverse, src_term, dst_term) is None:
            return HOM_NONE, None

    dst_by_relation = {}
    for atom in dst.atoms:
        dst_by_relation.setdefault(atom.relation, []).append(atom)

    # Most-constrained-first: fewer candidate atoms, earlier failure.
    src_atoms = sorted(
        src.atoms,
        key=lambda atom: (len(dst_by_relation.get(atom.relation, ())), atom.relation),
    )

    dst_builtins = set(dst.builtins)
    dst_nonnull = effective_nonnull(dst)
    src_nonnull = effective_nonnull(src) if require_iso else src.nonnull
    # Interpreted comparison facts: containment needs the target to *imply*
    # each mapped source fact, not to carry a syntactically equal copy.
    dst_system = domains.system_of(dst.comparisons)
    src_system = domains.system_of(src.comparisons) if require_iso else None
    used = set()
    nodes = [0]

    def check_obligations():
        if atoms_only:
            return True
        for cmp in src.comparisons:
            image = _map_cmp(cmp, mapping)
            if image is None or not dst_system.implies(image):
                return False
        if require_iso:
            # Mutual implication: the two predicate sets must be logically
            # equivalent, else multiplicity-preserving equality fails.
            for cmp in dst.comparisons:
                image = _map_cmp(cmp, inverse)
                if image is None or not src_system.implies(image):
                    return False
        for builtin in src.builtins:
            image = []
            for term in builtin.terms:
                if isinstance(term, Const):
                    image.append(term)
                elif term in mapping:
                    image.append(mapping[term])
                else:
                    return False
            if Builtin(builtin.skeleton, tuple(image)) not in dst_builtins:
                return False
        for term in src_nonnull:
            image = term if isinstance(term, Const) else mapping.get(term)
            if image is None:
                return False
            if isinstance(image, Const):
                if image.value is None:
                    return False
            elif image not in dst_nonnull:
                return False
        if require_iso:
            if len(src.builtins) != len(dst.builtins):
                return False
            images = {
                Builtin(
                    b.skeleton,
                    tuple(
                        t if isinstance(t, Const) else mapping.get(t) for t in b.terms
                    ),
                )
                for b in src.builtins
            }
            if images != dst_builtins:
                return False
            # Constants are trivially non-null (a NULL constant is caught
            # as unsatisfiable upstream); only *variable* obligations say
            # anything about the row set, so only they must coincide.
            mapped_nonnull = set()
            for term in src_nonnull:
                image = term if isinstance(term, Const) else mapping.get(term)
                if image is None:
                    return False
                if not isinstance(image, Const):
                    mapped_nonnull.add(image)
            dst_var_nonnull = {
                term for term in dst_nonnull if not isinstance(term, Const)
            }
            if mapped_nonnull != dst_var_nonnull:
                return False
        return True

    def search(position):
        if position == len(src_atoms):
            return check_obligations()
        atom = src_atoms[position]
        for candidate in dst_by_relation.get(atom.relation, ()):
            if require_iso:
                if id(candidate) in used:
                    continue
                if candidate.existential != atom.existential:
                    continue
            nodes[0] += 1
            if nodes[0] > budget.max_hom_nodes:
                raise _Budget()
            added = []
            consistent = True
            for src_term, dst_term in zip(atom.terms, candidate.terms):
                step = _bind(mapping, inverse, src_term, dst_term)
                if step is None:
                    consistent = False
                    break
                added.extend(step)
            if consistent:
                if require_iso:
                    used.add(id(candidate))
                if search(position + 1):
                    return True
                if require_iso:
                    used.discard(id(candidate))
            _unbind(mapping, inverse, added)
        return False

    try:
        found = search(0)
    except _Budget:
        return HOM_BUDGET, None
    if found:
        return HOM_FOUND, dict(mapping)
    return HOM_NONE, None


def is_isomorphic(left, right, budget):
    """Three-valued bag-isomorphism test between two chased tableaux."""
    status, _ = find_homomorphism(left, right, budget, require_iso=True)
    return status


__all__ = [
    "HOM_BUDGET",
    "HOM_FOUND",
    "HOM_NONE",
    "effective_nonnull",
    "find_homomorphism",
    "is_isomorphic",
]
