"""The rewrite-soundness checker: attribute every new diagnostic to the
rule firing that introduced it.

Paranoid mode used to call ``validate_graph`` after each rule firing and
report "the graph is broken"; this checker instead diffs the *analysis
report* before and after each firing, so the resilience layer learns
**which rule** introduced **which diagnostic** — and only quarantines on
new *errors* (a rule is free to add or remove warnings mid-pipeline).

The checker is created once per rewrite phase (baseline = the incoming
graph's diagnostics, so pre-existing problems are never attributed to a
rule), consulted after every successful firing, and its attribution log
flows into :meth:`~repro.rewrite.rule.RuleContext.observability`, hence
into ``ExecutionOutcome.stats["soundness_violations"]`` and ``explain``.

When an :class:`~repro.analysis.equivalence.EquivalenceChecker` is
attached, each firing is additionally *translation-validated*: the
pre-firing snapshot and the rewritten graph are canonicalized into
tableaux, chased under the catalog's dependencies, and compared. A
``REFUTED`` verdict — the rewrite provably changed the query's meaning
on a concrete counterexample database — is reported as ``QGM601`` and
raised exactly like a new error diagnostic, so the engine's existing
rollback-and-quarantine path handles it. ``UNKNOWN`` is always accepted
(the validator's fragment is conjunctive blocks plus unions; anything
beyond yields UNKNOWN, never a false alarm).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.framework import Analyzer, soundness_passes
from repro.errors import QgmError


class SoundnessChecker:
    """Diffs pre/post-firing analysis results for one rewrite run."""

    def __init__(
        self,
        graph,
        analyzer: Optional[Analyzer] = None,
        equivalence_checker=None,
        diff_analysis: bool = True,
    ):
        self.analyzer = analyzer if analyzer is not None else Analyzer(
            soundness_passes()
        )
        #: When set, every firing with a ``before`` snapshot is submitted
        #: to chase-based translation validation (REFUTED -> QGM601).
        self.equivalence_checker = equivalence_checker
        #: Allows running translation validation alone (benchmarks).
        self.diff_analysis = diff_analysis
        self.baseline: Set[Tuple] = (
            self._keys(self.analyzer.analyze(graph)) if diff_analysis else set()
        )
        #: rule name -> list of diagnostics that rule introduced (errors
        #: trigger rollback + quarantine; warnings are recorded only).
        self.attributed: Dict[str, List[Diagnostic]] = {}

    @staticmethod
    def _keys(report) -> Set[Tuple]:
        return {diagnostic.key() for diagnostic in report}

    def after_firing(
        self, graph, rule_name: str, context=None, before=None
    ) -> List[Diagnostic]:
        """Re-analyze ``graph`` after ``rule_name`` fired.

        New warnings/infos are absorbed into the baseline and attributed
        silently. New *errors* are attributed, recorded on ``context``,
        and raised as :class:`~repro.errors.QgmError` so the engine rolls
        the firing back and quarantines the rule. When an equivalence
        checker is attached and ``before`` (the pre-firing snapshot) is
        given, the firing is also translation-validated; a ``REFUTED``
        verdict raises as a ``QGM601`` error. Returns the list of new
        diagnostics (when it does not raise).
        """
        fresh: List[Diagnostic] = []
        if self.diff_analysis:
            report = self.analyzer.analyze(graph)
            fresh = [d for d in report if d.key() not in self.baseline]
            if fresh:
                for diagnostic in fresh:
                    diagnostic.rule = rule_name
                self.attributed.setdefault(rule_name, []).extend(fresh)
                new_errors = [d for d in fresh if d.severity == Severity.ERROR]
                if context is not None:
                    context.record_soundness(
                        rule_name, [d.code for d in (new_errors or fresh)]
                    )
                if new_errors:
                    summary = "; ".join(
                        "%s at %s: %s" % (d.code, d.location, d.message)
                        for d in new_errors[:3]
                    )
                    if len(new_errors) > 3:
                        summary += "; ... (%d total)" % len(new_errors)
                    raise QgmError(
                        "rule %r introduced %d new error diagnostic(s): %s"
                        % (rule_name, len(new_errors), summary),
                        context={
                            "rule": rule_name,
                            "codes": [d.code for d in new_errors],
                        },
                    )
            # Warnings only (or clean): keep them out of the next diff.
            self.baseline = self._keys(report)
        else:
            # Without the diffing analyzer, keep the historical fail-fast
            # structural backstop (soundness=False behaves as before).
            from repro.qgm.validate import validate_graph

            validate_graph(graph)
        self._translation_validate(graph, rule_name, context, before)
        return fresh

    def _translation_validate(self, graph, rule_name, context, before):
        """Chase-check ``before -> graph``; REFUTED raises as QGM601."""
        if self.equivalence_checker is None or before is None:
            return
        verdict = self.equivalence_checker.check_graphs(before, graph)
        if verdict.status == "UNKNOWN":
            # Whole-graph canonicalization bails on magic regions and other
            # out-of-fragment features; scoped validation compares just the
            # changed region as a standalone query. It can only upgrade
            # UNKNOWN to VERIFIED, never introduce a REFUTED.
            from repro.analysis.equivalence.scope import scoped_verdict

            scoped = scoped_verdict(self.equivalence_checker, before, graph)
            if scoped is not None:
                verdict = scoped
        if context is not None:
            context.record_equivalence(
                rule_name, verdict.status, verdict.seconds, verdict.reason_code
            )
        if verdict.status != "REFUTED":
            return
        diagnostic = Diagnostic(
            code="QGM601",
            severity=Severity.ERROR,
            message="translation validation refuted this firing: %s"
            % verdict.detail,
            box=graph.top_box.name,
            box_id=graph.top_box.box_id,
            pass_name="equivalence",
            rule=rule_name,
        )
        self.attributed.setdefault(rule_name, []).append(diagnostic)
        if context is not None:
            context.record_soundness(rule_name, ["QGM601"])
        raise QgmError(
            "rule %r refuted by translation validation: %s"
            % (rule_name, verdict.detail),
            context={
                "rule": rule_name,
                "codes": ["QGM601"],
                "counterexample": verdict.counterexample,
            },
        )
