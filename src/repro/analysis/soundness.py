"""The rewrite-soundness checker: attribute every new diagnostic to the
rule firing that introduced it.

Paranoid mode used to call ``validate_graph`` after each rule firing and
report "the graph is broken"; this checker instead diffs the *analysis
report* before and after each firing, so the resilience layer learns
**which rule** introduced **which diagnostic** — and only quarantines on
new *errors* (a rule is free to add or remove warnings mid-pipeline).

The checker is created once per rewrite phase (baseline = the incoming
graph's diagnostics, so pre-existing problems are never attributed to a
rule), consulted after every successful firing, and its attribution log
flows into :meth:`~repro.rewrite.rule.RuleContext.observability`, hence
into ``ExecutionOutcome.stats["soundness_violations"]`` and ``explain``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.framework import Analyzer, soundness_passes
from repro.errors import QgmError


class SoundnessChecker:
    """Diffs pre/post-firing analysis results for one rewrite run."""

    def __init__(self, graph, analyzer: Optional[Analyzer] = None):
        self.analyzer = analyzer if analyzer is not None else Analyzer(
            soundness_passes()
        )
        self.baseline: Set[Tuple] = self._keys(self.analyzer.analyze(graph))
        #: rule name -> list of diagnostics that rule introduced (errors
        #: trigger rollback + quarantine; warnings are recorded only).
        self.attributed: Dict[str, List[Diagnostic]] = {}

    @staticmethod
    def _keys(report) -> Set[Tuple]:
        return {diagnostic.key() for diagnostic in report}

    def after_firing(self, graph, rule_name: str, context=None) -> List[Diagnostic]:
        """Re-analyze ``graph`` after ``rule_name`` fired.

        New warnings/infos are absorbed into the baseline and attributed
        silently. New *errors* are attributed, recorded on ``context``,
        and raised as :class:`~repro.errors.QgmError` so the engine rolls
        the firing back and quarantines the rule. Returns the list of new
        diagnostics (when it does not raise).
        """
        report = self.analyzer.analyze(graph)
        fresh = [d for d in report if d.key() not in self.baseline]
        if not fresh:
            self.baseline = self._keys(report)
            return []
        for diagnostic in fresh:
            diagnostic.rule = rule_name
        self.attributed.setdefault(rule_name, []).extend(fresh)
        new_errors = [d for d in fresh if d.severity == Severity.ERROR]
        if context is not None:
            context.record_soundness(
                rule_name, [d.code for d in (new_errors or fresh)]
            )
        if new_errors:
            summary = "; ".join(
                "%s at %s: %s" % (d.code, d.location, d.message)
                for d in new_errors[:3]
            )
            if len(new_errors) > 3:
                summary += "; ... (%d total)" % len(new_errors)
            raise QgmError(
                "rule %r introduced %d new error diagnostic(s): %s"
                % (rule_name, len(new_errors), summary),
                context={
                    "rule": rule_name,
                    "codes": [d.code for d in new_errors],
                },
            )
        # Warnings only: keep them out of the next firing's diff.
        self.baseline = self._keys(report)
        return fresh
