"""Dataflow-backed diagnostics (codes ``QGM5xx``).

Runs the three interbox dataflow analyses (:mod:`repro.analysis.dataflow`)
over the graph and audits what the rest of the system *claims* against
what the fixpoint can *prove*:

* ``QGM501`` — an adornment letter (``b``/``c`` from :mod:`repro.magic.
  adorn`) with no justifying binding: the column is neither proven bound
  by the binding-propagation analysis, nor covered by a linked magic
  table, nor restricted by any consumer-side predicate. Warning: the
  transformed query is still correct (magic only ever filters), but the
  adornment describes a restriction that does not exist.
* ``QGM502`` — a box enforces DISTINCT although the key analysis proves
  its output duplicate-free without the enforcement. Info: the
  enforcement is wasted work the distinct-pullup rule can remove.
* ``QGM503`` — an output column is provably NULL in every row. Warning:
  predicates over it can never be satisfied under 3VL.

The inferred facts are published for other passes and API consumers:
``context.facts["dataflow_keys"]``, ``["dataflow_nullability"]`` and
``["dataflow_bindings"]`` (each ``id(box) -> fact``).
"""

from __future__ import annotations

from typing import Set

from repro.analysis.diagnostics import Severity
from repro.analysis.framework import AnalysisContext, AnalysisPass, AnalysisReport
from repro.magic.adornment import BOUND, CONDITIONED
from repro.qgm import expr as qe
from repro.qgm.model import DistinctMode


class DataflowPass(AnalysisPass):
    """Audit adornments, DISTINCT enforcements and nullability claims."""

    name = "dataflow"

    def __init__(self, check_redundant_distinct: bool = True):
        #: The redundant-DISTINCT check runs one extra fixpoint per
        #: enforcing box; the soundness checker (which re-runs passes after
        #: every rule firing) disables it.
        self.check_redundant_distinct = check_redundant_distinct

    def run(self, context: AnalysisContext, report: AnalysisReport) -> None:
        from repro.analysis.dataflow import (
            solve_bindings,
            solve_keys,
            solve_nullability,
        )

        bindings = solve_bindings(context.graph.top_box)
        nullability = solve_nullability(context.graph.top_box)
        keys = solve_keys(context.graph.top_box)
        context.facts["dataflow_bindings"] = bindings
        context.facts["dataflow_nullability"] = nullability
        context.facts["dataflow_keys"] = keys

        for box in context.boxes:
            if box.adornment:
                self._check_adornment(context, box, bindings, report)
            fact = nullability.get(id(box))
            if fact is not None:
                for name in sorted(fact.allnull):
                    self.emit(
                        report,
                        "QGM503",
                        Severity.WARNING,
                        "column %r is NULL in every row; comparisons over it "
                        "can never hold" % name,
                        box=box,
                        column=name,
                        hint="drop the column or the predicates using it",
                    )
            if (
                self.check_redundant_distinct
                and box.distinct == DistinctMode.ENFORCE
            ):
                self._check_redundant_distinct(box, report)

    # -- QGM501: adornment audit ----------------------------------------------

    def _check_adornment(self, context, box, bindings, report) -> None:
        adornment = box.adornment
        if len(adornment) != len(box.columns):
            return  # QGM401 (magic well-formedness) already reports this
        bound_fact = bindings.get(id(box), frozenset())
        linked = self._linked_columns(box)
        consumers = context.consumers.get(id(box), [])
        for position, letter in enumerate(adornment):
            if letter not in (BOUND, CONDITIONED):
                continue
            name = box.columns[position].name.lower()
            if name in bound_fact or name in linked:
                continue
            if self._consumer_restricts(
                consumers, name, equality_only=(letter == BOUND)
            ):
                continue
            if letter == CONDITIONED and self._has_condition_magic(box):
                continue
            self.emit(
                report,
                "QGM501",
                Severity.WARNING,
                "adornment %r claims column %r is %s, but no binding path "
                "reaches it (not bound by dataflow, no linked magic, no "
                "consumer predicate)"
                % (
                    str(adornment),
                    name,
                    "bound" if letter == BOUND else "conditioned",
                ),
                box=box,
                column=name,
                hint="the restriction was dropped; re-derive the adornment",
            )

    @staticmethod
    def _linked_columns(box) -> Set[str]:
        out: Set[str] = set()
        for magic in box.linked_magic:
            for name in magic.properties.get("bound_columns", []):
                out.add(name.lower())
        return out

    @staticmethod
    def _has_condition_magic(box) -> bool:
        from repro.qgm.model import QuantifierType

        return any(
            quantifier.is_magic
            and quantifier.qtype == QuantifierType.EXISTENTIAL
            for quantifier in box.quantifiers
        )

    @staticmethod
    def _consumer_restricts(consumers, column, equality_only) -> bool:
        """True when some consumer of the box restricts ``column`` of its
        quantifier: an equality (for ``b``) or any predicate (for ``c``)
        over ``q.column`` whose other references leave ``q`` out."""
        for quantifier in consumers:
            parent = quantifier.parent_box
            if parent is None:
                continue
            candidates = list(parent.predicates) + list(
                quantifier.selector_predicates
            )
            for predicate in candidates:
                for conjunct in qe.conjuncts(predicate):
                    if equality_only:
                        if not (
                            isinstance(conjunct, qe.QBinary)
                            and conjunct.op == "="
                        ):
                            continue
                        sides = (
                            (conjunct.left, conjunct.right),
                            (conjunct.right, conjunct.left),
                        )
                        for side, other in sides:
                            if (
                                isinstance(side, qe.QColRef)
                                and side.quantifier is quantifier
                                and side.column.lower() == column
                                and not any(
                                    ref.quantifier is quantifier
                                    for ref in qe.column_refs(other)
                                )
                            ):
                                return True
                    else:
                        if any(
                            ref.quantifier is quantifier
                            and ref.column.lower() == column
                            for ref in qe.column_refs(conjunct)
                        ):
                            return True
        return False

    # -- QGM502: redundant DISTINCT -------------------------------------------

    def _check_redundant_distinct(self, box, report) -> None:
        from repro.analysis.dataflow import solve_box_keys

        keys = solve_box_keys(box, ignore_enforce=True)
        if not keys:
            return
        witness = sorted(min(keys, key=len))
        self.emit(
            report,
            "QGM502",
            Severity.INFO,
            "DISTINCT enforcement is redundant: the output is duplicate-free "
            "on key {%s}" % ", ".join(witness),
            box=box,
            hint="the distinct-pullup rule can relax this to PERMIT",
        )
