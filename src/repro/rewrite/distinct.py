"""The distinct-pullup rule.

Relaxes ``DISTINCT`` enforcement to ``PERMIT`` when the box's output is
provably duplicate-free without it. The paper uses this rule twice during
phase 2 (Example 4.1) — the magic boxes EMST builds carry SELECT DISTINCT,
and proving the DISTINCT redundant is what later allows the merge rule to
fold them away in phase 3 ("This merge was possible only because we
inferred, in phase 2, that duplicates were guaranteed to be absent from the
magic tables").

Duplicate-freeness is decided by :func:`repro.qgm.keys.is_duplicate_free`,
which since the dataflow subsystem landed is a façade over the fixpoint key
analysis (:mod:`repro.analysis.dataflow.keyflow`) — so the proof also works
through recursive cycles, and :func:`repro.magic.magic_boxes.
relax_proven_duplicate_free` applies the same proof graph-wide between
phases 2 and 3.
"""

from __future__ import annotations

from repro.qgm.keys import is_duplicate_free
from repro.qgm.model import DistinctMode
from repro.rewrite.rule import RewriteRule


class DistinctPullupRule(RewriteRule):
    """ENFORCE → PERMIT when duplicate-freeness is provable."""

    name = "distinct-pullup"
    phases = frozenset({1, 2, 3})
    priority = 20

    def applies_to(self, box, context):
        return box.distinct == DistinctMode.ENFORCE

    def apply(self, box, context):
        if is_duplicate_free(box, ignore_enforce=True):
            box.distinct = DistinctMode.PERMIT
            return True
        return False
