"""Rule-based query rewrite (§3.1 of the paper, after [PHH92]).

A production-rule engine walks the query graph depth-first and forward
chains rewrite rules to a fixpoint. The three-phase control of §3.3 is
implemented by :meth:`RewriteEngine.run_phase`: phase 1 runs every rule
except EMST, phase 2 adds EMST (with join orders from the plan optimizer),
phase 3 disables EMST and cleans up the graph EMST produced.
"""

from repro.rewrite.rule import RewriteRule, RuleContext
from repro.rewrite.engine import RewriteEngine, default_rules
from repro.rewrite.merge import MergeRule
from repro.rewrite.pushdown import PredicatePushdownRule, push_predicate_into_child
from repro.rewrite.projection import ProjectionPruneRule
from repro.rewrite.redundant_join import RedundantJoinRule
from repro.rewrite.distinct import DistinctPullupRule

__all__ = [
    "RewriteRule",
    "RuleContext",
    "RewriteEngine",
    "default_rules",
    "MergeRule",
    "PredicatePushdownRule",
    "push_predicate_into_child",
    "ProjectionPruneRule",
    "RedundantJoinRule",
    "DistinctPullupRule",
]
