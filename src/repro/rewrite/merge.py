"""The merge rule: view unfolding (the analog of unfolding in logic).

Merges a single-use child select-box into its consuming select-box:
the child's quantifiers and predicates move up and every reference to the
child's output is replaced by the defining expression. This is the rule
that, in phase 3, folds the magic boxes EMST created back into their
consumers (Example 4.1 / Figure 4 lower-right), once the distinct-pullup
rule has proven their DISTINCT unnecessary.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType
from repro.rewrite.rule import RewriteRule
from repro.rewrite.common import in_own_subtree, substitute_everywhere, total_uses


class MergeRule(RewriteRule):
    """Merge child select-boxes into their (single) consumer."""

    name = "merge"
    #: Not active in phase 2: EMST is wiring magic boxes there and the join
    #: orders from plan pass 1 must stay valid while it runs.
    phases = frozenset({1, 3})
    priority = 50

    def applies_to(self, box, context):
        return box.kind == BoxKind.SELECT

    def apply(self, box, context):
        for quantifier in list(box.quantifiers):
            if self._mergeable(box, quantifier, context):
                self._merge(box, quantifier, context)
                return True
        return False

    def _mergeable(self, parent, quantifier, context):
        child = quantifier.input_box
        if quantifier.qtype != QuantifierType.FOREACH:
            return False
        if child.kind != BoxKind.SELECT:
            return False
        if context.phase < 3 and (child.is_special or parent.is_special):
            return False
        if child.linked_magic:
            return False
        if total_uses(context.graph, child) != 1:
            return False
        if in_own_subtree(child):
            return False
        if child.distinct == DistinctMode.ENFORCE:
            # Dropping the child's duplicate elimination is only legal when
            # it is provably a no-op, or when the parent enforces DISTINCT
            # itself (dedup later subsumes dedup earlier for set output).
            from repro.qgm.keys import is_duplicate_free

            if not is_duplicate_free(child, ignore_enforce=True):
                if parent.distinct != DistinctMode.ENFORCE:
                    return False
        return True

    def _merge(self, parent, quantifier, context):
        graph = context.graph
        child = quantifier.input_box

        # Move the child's quantifiers up.
        moved = list(child.quantifiers)
        existing_names = {q.name for q in parent.quantifiers}
        for inner in moved:
            if inner.name in existing_names:
                inner.name = graph.fresh_name(inner.name)
            inner.parent_box = parent
            parent.quantifiers.append(inner)
            existing_names.add(inner.name)
        child.quantifiers = []

        # Replace references to the merged quantifier by the child's
        # defining expressions — everywhere, because descendants of the
        # parent may correlate to it.
        definitions = {
            column.name.lower(): column.expr for column in child.columns
        }

        def mapping(ref):
            if ref.quantifier is quantifier:
                return definitions[ref.column.lower()]
            return None

        parent.remove_quantifier(quantifier)
        substitute_everywhere(graph, mapping)
        parent.predicates.extend(child.predicates)

        # Keep the join-order oracle coherent: splice the child's foreach
        # order in at the merged quantifier's position.
        order = context.join_orders.get(parent.box_id)
        if order and quantifier.name in order:
            child_order = context.join_orders.get(child.box_id) or [
                q.name for q in moved if q.qtype == QuantifierType.FOREACH
            ]
            position = order.index(quantifier.name)
            context.join_orders[parent.box_id] = (
                order[:position]
                + [n for n in child_order if any(q.name == n for q in moved)]
                + order[position + 1 :]
            )
