"""Projection pruning: drop output columns nobody reads.

EMST's adorned copies often expose columns their single consumer never
references; pruning them shrinks intermediate results. Pruning is unsafe on
boxes that enforce DISTINCT (the column set defines the duplicate-
elimination key) and on the positional children of set operations.
"""

from __future__ import annotations

from repro.qgm.model import BoxKind, DistinctMode
from repro.rewrite.rule import RewriteRule
from repro.rewrite.common import referenced_output_columns, total_uses


class ProjectionPruneRule(RewriteRule):
    """Remove unused output columns of derived boxes."""

    name = "projection-prune"
    phases = frozenset({1, 3})
    priority = 80

    def applies_to(self, box, context):
        return box.kind in (BoxKind.SELECT, BoxKind.GROUPBY)

    def apply(self, box, context):
        graph = context.graph
        if box is graph.top_box:
            return False
        if box.distinct == DistinctMode.ENFORCE:
            return False
        if context.phase < 3 and box.is_special:
            return False
        # Positional consumers (set ops) forbid pruning.
        for consumer in graph.boxes():
            for quantifier in consumer.quantifiers:
                if quantifier.input_box is box and consumer.kind in (
                    BoxKind.UNION,
                    BoxKind.INTERSECT,
                    BoxKind.EXCEPT,
                ):
                    return False
        if total_uses(graph, box) < 1:
            return False
        used = referenced_output_columns(graph, box)
        keep = [c for c in box.columns if c.name.lower() in used]
        if not keep:
            keep = box.columns[:1]  # a box must output something
        if len(keep) == len(box.columns):
            return False
        box.columns = keep
        return True
