"""The forward-chaining rewrite engine with a depth-first cursor.

Mirrors the paper's description: "A cursor facility traverses the query
blocks depth first ... and a forward chaining engine applies the rules,
including the EMST rule, at each query block."

Resilience: ``run_phase`` accepts a :class:`~repro.resilience.governor.
ResourceGovernor` (sweep budget + deadline; a default one enforces the
historical 200-sweep cap) and an optional
:class:`~repro.resilience.fallback.ResiliencePolicy`. With a policy whose
``protect_rules`` is set, every rule firing runs against a snapshot of
the graph: a rule that raises — or, in paranoid mode, leaves the graph
structurally invalid — is rolled back and quarantined for the rest of
the query, and the phase continues without it.
"""

from __future__ import annotations

import time

from repro.errors import ResourceExhaustedError
from repro.rewrite.rule import RuleContext

# Retained name for backward compatibility; the governor owns the default.
_MAX_SWEEPS = 200


class RewriteEngine:
    """Applies a set of rewrite rules to a query graph, phase by phase."""

    def __init__(self, rules=None):
        self.rules = sorted(rules or default_rules(), key=lambda r: r.priority)

    def add_rule(self, rule):
        """Register an additional rule (extensibility hook)."""
        self.rules.append(rule)
        self.rules.sort(key=lambda r: r.priority)

    def run_phase(
        self, graph, phase, join_orders=None, context=None, governor=None,
        resilience=None,
    ):
        """Run one rewrite phase to a fixpoint; returns the RuleContext
        (with per-rule firing counts and timings)."""
        from repro.resilience.governor import ResourceGovernor

        if context is None:
            context = RuleContext(graph, phase=phase, join_orders=join_orders)
        else:
            context.phase = phase
            if join_orders is not None:
                context.join_orders.update(join_orders)
        if governor is None:
            governor = (
                resilience.governor if resilience is not None
                else ResourceGovernor()
            )
        quarantine = resilience.quarantine if resilience is not None else None
        protect = resilience is not None and resilience.protect_rules
        paranoid = resilience is not None and resilience.paranoid
        checker = None
        run_soundness = getattr(resilience, "soundness", True)
        run_equivalence = getattr(resilience, "equivalence", True)
        if protect and paranoid and (run_soundness or run_equivalence):
            # Paranoid mode runs the rewrite-soundness checker: the phase's
            # incoming diagnostics are the baseline, and every new *error*
            # after a firing is attributed to the rule and quarantines it.
            # With equivalence enabled, each firing is additionally
            # translation-validated against its pre-firing snapshot; a
            # chase-refuted firing (QGM601) takes the same rollback path.
            from repro.analysis.soundness import SoundnessChecker

            equivalence_checker = None
            if run_equivalence:
                from repro.analysis.equivalence import EquivalenceChecker

                equivalence_checker = EquivalenceChecker(
                    getattr(graph, "catalog", None)
                )
            checker = SoundnessChecker(
                graph,
                equivalence_checker=equivalence_checker,
                diff_analysis=run_soundness,
            )
        active = [rule for rule in self.rules if phase in rule.phases]
        sweeps = 0
        changed = True
        while changed:
            sweeps += 1
            governor.check_rewrite_sweeps(sweeps, phase)
            changed = False
            rolled_back = False
            live = [
                rule for rule in active
                if quarantine is None or rule.name not in quarantine
            ]
            # The cursor: depth-first over the current graph. The box list
            # is recomputed each sweep because rules mutate the graph.
            for box in graph.boxes():
                for rule in live:
                    if not rule.applies_to(box, context):
                        continue
                    fired = self._fire(
                        rule, box, graph, context, protect, paranoid, quarantine,
                        checker,
                    )
                    if fired is None:
                        # Rolled back: every box/quantifier object was
                        # replaced by the snapshot's, so the cursor state
                        # is stale — restart the sweep from scratch.
                        rolled_back = True
                        break
                    if fired:
                        context.record_firing(rule.name)
                        changed = True
                if rolled_back:
                    break
            if rolled_back:
                changed = True
        return context

    def _fire(self, rule, box, graph, context, protect, paranoid, quarantine,
              checker=None):
        """Apply ``rule`` at ``box``; returns True/False from the rule, or
        None when the firing failed and the graph was rolled back."""
        if not protect:
            started = time.perf_counter()
            try:
                return rule.apply(box, context)
            finally:
                context.record_time(rule.name, time.perf_counter() - started)

        from repro.qgm.clone import clone_graph, restore_graph
        from repro.qgm.validate import validate_graph

        snapshot = clone_graph(graph)
        started = time.perf_counter()
        try:
            fired = rule.apply(box, context)
            if fired and paranoid:
                if checker is not None:
                    # Raises QgmError when the firing introduced new error
                    # diagnostics — or was refuted by translation
                    # validation — after attributing them to the rule.
                    checker.after_firing(
                        graph, rule.name, context, before=snapshot
                    )
                else:
                    validate_graph(graph)
            return fired
        except ResourceExhaustedError:
            raise  # a blown budget is the query's fault, not the rule's
        except Exception as exc:
            restore_graph(graph, snapshot)
            reason = "%s: %s" % (type(exc).__name__, exc)
            context.record_rollback(rule.name)
            context.record_quarantine(rule.name, reason)
            if quarantine is not None:
                quarantine.add(rule.name, reason, phase=context.phase)
            return None
        finally:
            context.record_time(rule.name, time.perf_counter() - started)


def default_rules(include_emst=False, emst_rule=None):
    """The standard rule set. EMST is added separately because it needs the
    join-order oracle (see :mod:`repro.magic.emst`); pass ``emst_rule`` to
    use a configured variant (e.g. plain magic without supplementaries)."""
    from repro.rewrite.merge import MergeRule
    from repro.rewrite.pushdown import PredicatePushdownRule
    from repro.rewrite.projection import ProjectionPruneRule
    from repro.rewrite.redundant_join import RedundantJoinRule
    from repro.rewrite.distinct import DistinctPullupRule
    from repro.rewrite.local_magic import LocalMagicRule

    rules = [
        DistinctPullupRule(),
        PredicatePushdownRule(),
        LocalMagicRule(),
        RedundantJoinRule(),
        MergeRule(),
        ProjectionPruneRule(),
    ]
    if include_emst or emst_rule is not None:
        if emst_rule is None:
            from repro.magic.emst import EmstRule

            emst_rule = EmstRule()
        rules.append(emst_rule)
    return rules
