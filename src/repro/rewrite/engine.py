"""The forward-chaining rewrite engine with a depth-first cursor.

Mirrors the paper's description: "A cursor facility traverses the query
blocks depth first ... and a forward chaining engine applies the rules,
including the EMST rule, at each query block."
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.rewrite.rule import RuleContext

_MAX_SWEEPS = 200


class RewriteEngine:
    """Applies a set of rewrite rules to a query graph, phase by phase."""

    def __init__(self, rules=None):
        self.rules = sorted(rules or default_rules(), key=lambda r: r.priority)

    def add_rule(self, rule):
        """Register an additional rule (extensibility hook)."""
        self.rules.append(rule)
        self.rules.sort(key=lambda r: r.priority)

    def run_phase(self, graph, phase, join_orders=None, context=None):
        """Run one rewrite phase to a fixpoint; returns the RuleContext
        (with per-rule firing counts)."""
        if context is None:
            context = RuleContext(graph, phase=phase, join_orders=join_orders)
        else:
            context.phase = phase
            if join_orders is not None:
                context.join_orders.update(join_orders)
        active = [rule for rule in self.rules if phase in rule.phases]
        sweeps = 0
        changed = True
        while changed:
            sweeps += 1
            if sweeps > _MAX_SWEEPS:
                raise RewriteError(
                    "rewrite phase %d did not reach a fixpoint in %d sweeps"
                    % (phase, _MAX_SWEEPS)
                )
            changed = False
            # The cursor: depth-first over the current graph. The box list
            # is recomputed each sweep because rules mutate the graph.
            for box in graph.boxes():
                for rule in active:
                    if not rule.applies_to(box, context):
                        continue
                    if rule.apply(box, context):
                        context.record_firing(rule.name)
                        changed = True
        return context


def default_rules(include_emst=False, emst_rule=None):
    """The standard rule set. EMST is added separately because it needs the
    join-order oracle (see :mod:`repro.magic.emst`); pass ``emst_rule`` to
    use a configured variant (e.g. plain magic without supplementaries)."""
    from repro.rewrite.merge import MergeRule
    from repro.rewrite.pushdown import PredicatePushdownRule
    from repro.rewrite.projection import ProjectionPruneRule
    from repro.rewrite.redundant_join import RedundantJoinRule
    from repro.rewrite.distinct import DistinctPullupRule
    from repro.rewrite.local_magic import LocalMagicRule

    rules = [
        DistinctPullupRule(),
        PredicatePushdownRule(),
        LocalMagicRule(),
        RedundantJoinRule(),
        MergeRule(),
        ProjectionPruneRule(),
    ]
    if include_emst or emst_rule is not None:
        if emst_rule is None:
            from repro.magic.emst import EmstRule

            emst_rule = EmstRule()
        rules.append(emst_rule)
    return rules
