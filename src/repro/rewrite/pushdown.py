"""Predicate pushdown.

The standalone rule pushes *local* predicates (predicates over a single
foreach quantifier, no correlation) into derived child boxes so they apply
early — the paper's phase-1 "local predicate pushdown". The helper
functions are also used by the EMST rule, which pushes *join* predicates
through the same machinery once the join order tells it which quantifiers
may pass bindings (Algorithm 4.1 step 3).

Per-box-kind behaviour, as §4.3 describes: a select box accepts predicates
directly; a groupby box passes predicates on group-key columns through to
its input; a set-operation box distributes the predicate to its children
(for EXCEPT both the outer and the inner input may be filtered); predicates
on aggregated columns do not pass a groupby box.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, QuantifierType
from repro.rewrite.rule import RewriteRule
from repro.rewrite.common import in_own_subtree, total_uses


def map_through_select(predicate, quantifier):
    """Rewrite ``predicate`` (over ``quantifier``'s output columns) into an
    expression over the child select box's internals."""
    child = quantifier.input_box

    def mapping(ref):
        if ref.quantifier is quantifier:
            return child.column(ref.column).expr
        return None

    return qe.substitute_refs(predicate, mapping)


def groupby_pushable(predicate, quantifier):
    """True when every reference through ``quantifier`` (over a groupby box)
    is to a group-key output column (never an aggregate)."""
    child = quantifier.input_box
    for ref in qe.column_refs(predicate):
        if ref.quantifier is quantifier:
            column = child.column(ref.column)
            if isinstance(column.expr, qe.QAggregate):
                return False
    return True


def map_through_groupby(predicate, quantifier):
    """Rewrite ``predicate`` over a groupby box's group-key output columns
    into an expression over the groupby's *input* quantifier."""
    child = quantifier.input_box

    def mapping(ref):
        if ref.quantifier is quantifier:
            return child.column(ref.column).expr  # a ref over the input q
        return None

    return qe.substitute_refs(predicate, mapping)


def map_positionally(predicate, quantifier, branch_quantifier):
    """Rewrite ``predicate`` over a set-op box's columns into the same
    predicate over one of its input quantifiers (positional columns)."""
    setop = quantifier.input_box
    child = branch_quantifier.input_box

    def mapping(ref):
        if ref.quantifier is quantifier:
            position = setop.column_ordinal(ref.column)
            return qe.QColRef(
                quantifier=branch_quantifier, column=child.columns[position].name
            )
        return None

    return qe.substitute_refs(predicate, mapping)


def can_push_into_child(graph, predicate, quantifier):
    """Dry-run check for :func:`push_predicate_into_child`."""
    child = quantifier.input_box
    if child.kind == BoxKind.SELECT:
        return True
    if child.kind == BoxKind.GROUPBY:
        if not groupby_pushable(predicate, quantifier):
            return False
        mapped = map_through_groupby(predicate, quantifier)
        inner = child.quantifiers[0]
        if inner.input_box.kind != BoxKind.SELECT:
            return False
        if total_uses(graph, inner.input_box) != 1:
            return False
        return can_push_into_child(graph, mapped, inner)
    if child.kind in (BoxKind.UNION, BoxKind.INTERSECT, BoxKind.EXCEPT):
        if in_own_subtree(child):
            return False  # recursive union: pushdown would change the fixpoint
        for branch in child.quantifiers:
            if branch.input_box.kind == BoxKind.BASE:
                return False
            if total_uses(graph, branch.input_box) != 1:
                return False
            mapped = map_positionally(predicate, quantifier, branch)
            if not can_push_into_child(graph, mapped, branch):
                return False
        return True
    return False


def push_predicate_into_child(graph, predicate, quantifier):
    """Push ``predicate`` (over ``quantifier``) into the child box.

    Returns True on success, having mutated the child; False leaves the
    graph untouched (the check runs first). The caller removes the
    predicate from the parent. The child must be exclusively owned (single
    use) — callers check; EMST pushes into fresh adorned copies, which
    always are.
    """
    if not can_push_into_child(graph, predicate, quantifier):
        return False
    _do_push(graph, predicate, quantifier)
    return True


def _do_push(graph, predicate, quantifier):
    child = quantifier.input_box
    if child.kind == BoxKind.SELECT:
        child.predicates.append(map_through_select(predicate, quantifier))
        return
    if child.kind == BoxKind.GROUPBY:
        mapped = map_through_groupby(predicate, quantifier)
        _do_push(graph, mapped, child.quantifiers[0])
        return
    for branch in child.quantifiers:
        mapped = map_positionally(predicate, quantifier, branch)
        _do_push(graph, mapped, branch)


class PredicatePushdownRule(RewriteRule):
    """Push local (single-quantifier, uncorrelated) predicates down."""

    name = "predicate-pushdown"
    phases = frozenset({1, 2, 3})
    priority = 40

    def applies_to(self, box, context):
        return box.kind == BoxKind.SELECT and bool(box.predicates)

    def apply(self, box, context):
        local = set(box.quantifiers)
        for predicate in list(box.predicates):
            refs = qe.column_refs(predicate)
            quantifiers = {ref.quantifier for ref in refs}
            if quantifiers - local:
                continue  # correlated predicate: owned by EMST
            if len(quantifiers) != 1:
                continue
            quantifier = next(iter(quantifiers))
            if quantifier.qtype != QuantifierType.FOREACH:
                continue
            child = quantifier.input_box
            if child.kind == BoxKind.BASE:
                continue
            if context.phase < 3 and child.is_special:
                continue
            if total_uses(context.graph, child) != 1:
                continue
            if in_own_subtree(child):
                continue
            if push_predicate_into_child(context.graph, predicate, quantifier):
                box.predicates.remove(predicate)
                return True
        return False
