"""Shared helpers for rewrite rules."""

from __future__ import annotations

from repro.qgm import expr as qe


def substitute_everywhere(graph, mapping):
    """Apply a column-reference substitution to every expression in the
    graph. ``mapping`` takes a QColRef and returns a replacement expression
    or None to keep it."""
    for box in graph.boxes():
        substitute_in_box(box, mapping)


def substitute_in_box(box, mapping):
    """Apply a column-reference substitution to one box's expressions."""
    box.columns = [
        type(column)(
            name=column.name,
            expr=qe.substitute_refs(column.expr, mapping)
            if column.expr is not None
            else None,
        )
        for column in box.columns
    ]
    box.predicates = [qe.substitute_refs(p, mapping) for p in box.predicates]
    box.group_keys = [qe.substitute_refs(k, mapping) for k in box.group_keys]
    for quantifier in box.quantifiers:
        if quantifier.selector_predicates:
            quantifier.selector_predicates = [
                qe.substitute_refs(p, mapping)
                for p in quantifier.selector_predicates
            ]


def total_uses(graph, target):
    """Number of quantifiers ranging over ``target`` plus magic links."""
    count = 0
    for box in graph.boxes():
        for quantifier in box.quantifiers:
            if quantifier.input_box is target:
                count += 1
        for magic in box.linked_magic:
            if magic is target:
                count += 1
    return count


def in_own_subtree(box):
    """True when ``box`` is reachable from itself (part of a cycle)."""
    seen = set()
    stack = [q.input_box for q in box.quantifiers]
    while stack:
        current = stack.pop()
        if current is box:
            return True
        if id(current) in seen:
            continue
        seen.add(id(current))
        for quantifier in current.quantifiers:
            stack.append(quantifier.input_box)
    return False


def referenced_output_columns(graph, target):
    """The set of ``target`` output column names (lower-cased) referenced by
    any expression in the graph through any quantifier over ``target``."""
    used = set()
    for box in graph.boxes():
        for expression in box.all_expressions():
            for ref in qe.column_refs(expression):
                if ref.quantifier.input_box is target:
                    used.add(ref.column.lower())
    return used
