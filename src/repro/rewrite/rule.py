"""The rewrite-rule protocol and the shared rule context."""

from __future__ import annotations


class RuleContext:
    """State shared by rules during one rewrite run.

    ``join_orders`` is the oracle produced by plan-optimization pass 1
    (box id → ordered quantifier names); only the EMST rule consumes it.
    ``phase`` is the current rewrite phase (1, 2 or 3, see Figure 3).
    """

    def __init__(self, graph, phase=1, join_orders=None):
        self.graph = graph
        self.phase = phase
        self.join_orders = dict(join_orders or {})
        self.firing_counts = {}
        # Per-rule observability (resilience groundwork): cumulative
        # wall-clock seconds spent in apply(), and how often a firing was
        # rolled back / the rule quarantined.
        self.rule_seconds = {}
        self.rollback_counts = {}
        self.quarantined = {}
        # rule name -> diagnostic codes the soundness checker attributed to
        # the rule's firings (see repro.analysis.soundness).
        self.soundness_violations = {}
        # rule name -> {VERIFIED/REFUTED/UNKNOWN: {reason_code: count}}
        # from chase-based translation validation, plus cumulative seconds
        # spent verifying. Reason codes are the stable strings from
        # repro.analysis.equivalence.reasons (or "unspecified").
        self.equivalence_verdicts = {}
        self.equivalence_seconds = 0.0

    def record_firing(self, rule_name):
        self.firing_counts[rule_name] = self.firing_counts.get(rule_name, 0) + 1

    def record_time(self, rule_name, seconds):
        self.rule_seconds[rule_name] = (
            self.rule_seconds.get(rule_name, 0.0) + seconds
        )

    def record_rollback(self, rule_name):
        self.rollback_counts[rule_name] = (
            self.rollback_counts.get(rule_name, 0) + 1
        )

    def record_quarantine(self, rule_name, reason):
        self.quarantined.setdefault(rule_name, reason)

    def record_soundness(self, rule_name, codes):
        self.soundness_violations.setdefault(rule_name, []).extend(codes)

    def record_equivalence(self, rule_name, status, seconds=0.0, reason_code=None):
        per_rule = self.equivalence_verdicts.setdefault(rule_name, {})
        per_status = per_rule.setdefault(status, {})
        code = reason_code or "unspecified"
        per_status[code] = per_status.get(code, 0) + 1
        self.equivalence_seconds += seconds

    def observability(self):
        """The per-rule counters as one plain dict (for outcome stats)."""
        return {
            "rule_firings": dict(self.firing_counts),
            "rule_seconds": dict(self.rule_seconds),
            "rule_rollbacks": dict(self.rollback_counts),
            "rules_quarantined": dict(self.quarantined),
            "soundness_violations": {
                name: list(codes)
                for name, codes in self.soundness_violations.items()
            },
            "equivalence_verdicts": {
                name: {
                    status: dict(codes)
                    for status, codes in statuses.items()
                }
                for name, statuses in self.equivalence_verdicts.items()
            },
            "equivalence_seconds": self.equivalence_seconds,
        }


class RewriteRule:
    """Base class for rewrite rules.

    A rule declares the phases it is active in and implements ``apply``,
    which inspects one box and returns True when it changed the graph.
    Rules fire repeatedly (forward chaining) until no rule fires anywhere.
    """

    #: Unique rule name (used in firing statistics and tests).
    name = "abstract"
    #: Phases in which the engine activates the rule.
    phases = frozenset({1, 2, 3})
    #: Lower runs earlier within a box.
    priority = 100

    def applies_to(self, box, context):
        """Cheap guard; ``apply`` is only called when this returns True."""
        return True

    def apply(self, box, context):
        """Try to rewrite at ``box``; return True when the graph changed."""
        raise NotImplementedError
