"""Redundant join elimination.

Three tiers, cheapest first:

1. **Syntactic**: a select box joins two quantifiers over the same box —
   or over two distinct BASE boxes of the *same table* — on a full key of
   that source; the second quantifier denotes the same row and is removed
   (the pattern view expansion leaves behind, e.g. query D referencing
   ``department`` both directly and through ``mgrSal``).
2. **Chase-verified self-joins**: two quantifiers over *distinct*
   view-expansion boxes with the same base-table footprint. The rule
   eliminates one on a cloned graph and keeps the change only when the
   chase-based equivalence checker returns ``VERIFIED`` — so the rule
   needs no bespoke soundness argument for each shape.
3. **FK-covered parent joins**: a join of a child table to its FOREIGN
   KEY parent on the full FK, where the parent contributes nothing beyond
   the referenced key columns. The inclusion dependency makes the join a
   multiplicity-one lookup; again the chase verdict, not syntax, decides.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.keys import box_keys
from repro.qgm.model import BoxKind, QuantifierType
from repro.rewrite.rule import RewriteRule
from repro.rewrite.common import substitute_everywhere

#: Trial eliminations attempted per apply() call (each costs one graph
#: clone plus one chase-based check).
_MAX_TRIALS = 8


def _is_trivial_self_equality(predicate):
    sides = qe.equality_sides(predicate)
    if sides is None:
        return False
    left, right = sides
    return left.quantifier is right.quantifier and left.column == right.column


def _same_source(first_box, second_box):
    """Same box object, or two BASE boxes over one stored table."""
    if first_box is second_box:
        return True
    return (
        first_box.kind == BoxKind.BASE
        and second_box.kind == BoxKind.BASE
        and first_box.table_name is not None
        and second_box.table_name is not None
        and first_box.table_name.lower() == second_box.table_name.lower()
    )


def _references_to(graph, quantifier):
    """Lower-cased column names referenced from ``quantifier`` anywhere."""
    columns = set()
    for box in graph.boxes():
        for expression in box.all_expressions():
            for ref in qe.column_refs(expression):
                if ref.quantifier is quantifier:
                    columns.add(ref.column.lower())
    return columns


def eliminate_quantifier(box, graph, keep, drop, column_mapping, join_orders=None):
    """Remove ``drop`` from ``box``, redirecting every reference through
    ``column_mapping`` (lower-cased drop column -> keep column name)."""

    def mapping(ref):
        if ref.quantifier is drop:
            return qe.QColRef(
                quantifier=keep,
                column=column_mapping.get(ref.column.lower(), ref.column),
            )
        return None

    box.remove_quantifier(drop)
    substitute_everywhere(graph, mapping)
    # Join predicates became trivial self-equalities; remove them (they
    # would only re-filter NULL keys, and the equivalence argument — a
    # declared key or a verified chase — guarantees the column is non-null
    # exactly where the join matched).
    box.predicates = [
        p for p in box.predicates if not _is_trivial_self_equality(p)
    ]
    if join_orders is not None:
        order = join_orders.get(box.box_id)
        if order and drop.name in order:
            join_orders[box.box_id] = [n for n in order if n != drop.name]


def _base_footprint(box, depth=0):
    """Sorted multiset of base tables a box expands over; None = unknown."""
    if depth > 6:
        return None
    if box.kind == BoxKind.BASE:
        return (box.table_name.lower(),) if box.table_name else None
    if box.kind != BoxKind.SELECT or box.is_special:
        return None
    tables = []
    for quantifier in box.quantifiers:
        if quantifier.qtype != QuantifierType.FOREACH:
            return None
        child = _base_footprint(quantifier.input_box, depth + 1)
        if child is None:
            return None
        tables.extend(child)
    return tuple(sorted(tables))


def _linked_by_equality(box, first, second):
    for predicate in box.predicates:
        sides = qe.equality_sides(predicate)
        if sides is None:
            continue
        quantifiers = {sides[0].quantifier, sides[1].quantifier}
        if quantifiers == {first, second}:
            return True
    return False


class RedundantJoinRule(RewriteRule):
    """Eliminate joins that provably re-fetch an already-joined row."""

    name = "redundant-join"
    phases = frozenset({1, 3})
    priority = 60

    def applies_to(self, box, context):
        if box.kind != BoxKind.SELECT or box.is_special:
            return False
        foreach = box.foreach_quantifiers()
        if len(foreach) < 2:
            return False
        for i, first in enumerate(foreach):
            for second in foreach[i + 1:]:
                if _same_source(first.input_box, second.input_box):
                    return True
                if _linked_by_equality(box, first, second):
                    return True
        return False

    def apply(self, box, context):
        if self._apply_syntactic(box, context):
            return True
        return self._apply_semantic(box, context)

    # -- tier 1: key-equated same-source joins -------------------------------

    def _apply_syntactic(self, box, context):
        foreach = box.foreach_quantifiers()
        for i, first in enumerate(foreach):
            for second in foreach[i + 1:]:
                if not _same_source(first.input_box, second.input_box):
                    continue
                matched = self._key_equated(box, first, second)
                if matched is None:
                    continue
                identity = {
                    name.lower(): name
                    for name in first.input_box.column_names
                }
                eliminate_quantifier(
                    box, context.graph, first, second, identity,
                    context.join_orders,
                )
                return True
        return False

    def _key_equated(self, box, first, second):
        """If the box equates a full key of the shared source between the
        two quantifiers, return the list of those equality predicates."""
        pairs = {}
        predicates_by_column = {}
        for predicate in box.predicates:
            sides = qe.equality_sides(predicate)
            if sides is None:
                continue
            left, right = sides
            pair = None
            if left.quantifier is first and right.quantifier is second:
                pair = (left.column.lower(), right.column.lower())
            elif left.quantifier is second and right.quantifier is first:
                pair = (right.column.lower(), left.column.lower())
            if pair and pair[0] == pair[1]:
                pairs[pair[0]] = True
                predicates_by_column[pair[0]] = predicate
        for key in box_keys(first.input_box):
            if key and all(column in pairs for column in key):
                return [predicates_by_column[column] for column in key]
        return None

    # -- tiers 2+3: chase-verified trial eliminations ------------------------

    def _apply_semantic(self, box, context):
        checker = self._equivalence_checker(context)
        if checker is None:
            return False
        attempted = getattr(context, "_redundant_join_attempts", None)
        if attempted is None:
            attempted = set()
            context._redundant_join_attempts = attempted
        trials = 0
        for keep, drop, column_mapping in self._semantic_candidates(box, context):
            key = (box.box_id, keep.name, drop.name)
            if key in attempted:
                continue
            attempted.add(key)
            trials += 1
            if trials > _MAX_TRIALS:
                return False
            if self._verify_elimination(box, context, checker, keep, drop,
                                        column_mapping):
                eliminate_quantifier(
                    box, context.graph, keep, drop, column_mapping,
                    context.join_orders,
                )
                return True
        return False

    def _equivalence_checker(self, context):
        checker = getattr(context, "_equivalence_checker", None)
        if checker is None:
            catalog = getattr(context.graph, "catalog", None)
            if catalog is None:
                return None
            from repro.analysis.equivalence import EquivalenceChecker

            checker = EquivalenceChecker(catalog)
            context._equivalence_checker = checker
        return checker

    def _semantic_candidates(self, box, context):
        """Yield (keep, drop, column_mapping) worth a trial elimination."""
        graph = context.graph
        foreach = box.foreach_quantifiers()

        # Self-joins through view-expansion boxes: both inputs are SELECT
        # boxes over the same base tables with the same output columns,
        # linked by at least one equality. A shared box object (two
        # quantifiers ranging over one expansion) lands here too when
        # tier 1 found no declared key to equate on.
        for i, first in enumerate(foreach):
            for second in foreach[i + 1:]:
                if (
                    first.input_box.kind != BoxKind.SELECT
                    or second.input_box.kind != BoxKind.SELECT
                ):
                    continue
                if first.input_box is not second.input_box:
                    footprint = _base_footprint(first.input_box)
                    if footprint is None or footprint != _base_footprint(
                        second.input_box
                    ):
                        continue
                if not _linked_by_equality(box, first, second):
                    continue
                for keep, drop in ((first, second), (second, first)):
                    keep_columns = {
                        name.lower(): name
                        for name in keep.input_box.column_names
                    }
                    if not set(_references_to(graph, drop)) <= set(keep_columns):
                        continue
                    yield keep, drop, keep_columns

        # FK-covered parent joins: child joined to its FOREIGN KEY parent
        # on the full FK, parent contributing only the referenced columns.
        for child in foreach:
            child_box = child.input_box
            if child_box.kind != BoxKind.BASE or child_box.schema is None:
                continue
            for fk in getattr(child_box.schema, "foreign_keys", ()):
                for parent in foreach:
                    if parent is child:
                        continue
                    parent_box = parent.input_box
                    if (
                        parent_box.kind != BoxKind.BASE
                        or parent_box.table_name is None
                        or parent_box.table_name.lower() != fk.ref_table.lower()
                    ):
                        continue
                    if not self._fk_fully_equated(box, child, parent, fk):
                        continue
                    column_mapping = {
                        ref.lower(): child_col
                        for ref, child_col in zip(fk.ref_columns, fk.columns)
                    }
                    if not set(_references_to(graph, parent)) <= set(
                        column_mapping
                    ):
                        continue
                    yield child, parent, column_mapping

    @staticmethod
    def _fk_fully_equated(box, child, parent, fk):
        equated = set()
        for predicate in box.predicates:
            sides = qe.equality_sides(predicate)
            if sides is None:
                continue
            left, right = sides
            if left.quantifier is parent and right.quantifier is child:
                left, right = right, left
            if left.quantifier is child and right.quantifier is parent:
                equated.add((left.column.lower(), right.column.lower()))
        return all(
            (child_col.lower(), ref_col.lower()) in equated
            for child_col, ref_col in zip(fk.columns, fk.ref_columns)
        )

    def _verify_elimination(self, box, context, checker, keep, drop,
                            column_mapping):
        """Perform the elimination on a cloned graph and ask the chase
        whether the rewritten box is equivalent to the original."""
        from repro.qgm.clone import clone_graph

        trial_graph = clone_graph(context.graph)
        trial_box = None
        for candidate in trial_graph.boxes():
            if candidate.box_id == box.box_id:
                trial_box = candidate
                break
        if trial_box is None:
            return False
        try:
            trial_keep = trial_box.quantifier(keep.name)
            trial_drop = trial_box.quantifier(drop.name)
        except Exception:
            return False
        eliminate_quantifier(
            trial_box, trial_graph, trial_keep, trial_drop, column_mapping
        )
        verdict = checker.check_boxes(box, trial_box)
        return verdict.status == "VERIFIED"
