"""Redundant join elimination.

When a select box joins two quantifiers over the *same* box on a full key
of that box, the second quantifier is the same row as the first and can be
removed (its references redirected). This is the common pattern left behind
by view expansion — e.g. query D references ``department`` both directly
and through ``mgrSal``.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.keys import box_keys
from repro.qgm.model import BoxKind, QuantifierType
from repro.rewrite.rule import RewriteRule
from repro.rewrite.common import substitute_everywhere


class RedundantJoinRule(RewriteRule):
    """Eliminate self-joins on a full key."""

    name = "redundant-join"
    phases = frozenset({1, 3})
    priority = 60

    def applies_to(self, box, context):
        if box.kind != BoxKind.SELECT:
            return False
        targets = [q.input_box for q in box.foreach_quantifiers()]
        return len(targets) != len({id(t) for t in targets})

    def apply(self, box, context):
        foreach = box.foreach_quantifiers()
        for i, first in enumerate(foreach):
            for second in foreach[i + 1 :]:
                if first.input_box is not second.input_box:
                    continue
                matched = self._key_equated(box, first, second)
                if matched is None:
                    continue
                self._eliminate(box, first, second, matched, context)
                return True
        return False

    def _key_equated(self, box, first, second):
        """If the box equates a full key of the shared child between the two
        quantifiers, return the list of those equality predicates."""
        pairs = {}
        predicates_by_column = {}
        for predicate in box.predicates:
            sides = qe.equality_sides(predicate)
            if sides is None:
                continue
            left, right = sides
            pair = None
            if left.quantifier is first and right.quantifier is second:
                pair = (left.column.lower(), right.column.lower())
            elif left.quantifier is second and right.quantifier is first:
                pair = (right.column.lower(), left.column.lower())
            if pair and pair[0] == pair[1]:
                pairs[pair[0]] = True
                predicates_by_column[pair[0]] = predicate
        for key in box_keys(first.input_box):
            if key and all(column in pairs for column in key):
                return [predicates_by_column[column] for column in key]
        return None

    def _eliminate(self, box, keep, drop, key_predicates, context):
        def mapping(ref):
            if ref.quantifier is drop:
                return qe.QColRef(quantifier=keep, column=ref.column)
            return None

        box.remove_quantifier(drop)
        substitute_everywhere(context.graph, mapping)
        # The key-equality predicates became trivial self-equalities; remove
        # them (they would only re-filter NULL keys, and key columns of a
        # declared key are non-null in our model).
        box.predicates = [
            p
            for p in box.predicates
            if not _is_trivial_self_equality(p)
        ]
        order = context.join_orders.get(box.box_id)
        if order and drop.name in order:
            context.join_orders[box.box_id] = [n for n in order if n != drop.name]


def _is_trivial_self_equality(predicate):
    sides = qe.equality_sides(predicate)
    if sides is None:
        return False
    left, right = sides
    return left.quantifier is right.quantifier and left.column == right.column
