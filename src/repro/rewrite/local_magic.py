"""The local magic rule.

§3.3 of the paper: during rewrite phase 1 "a version of the EMST rule that
does not depend on join orders and pushes only local predicates is used in
Starburst". The plain predicate-pushdown rule handles single-use children;
this rule covers the *shared* ones: a local predicate on a multi-use
derived table is pushed into a private copy of the table, leaving the
other consumers untouched. Copies are cached by (box, predicate signature)
so identical restrictions share one copy.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.clone import clone_box
from repro.qgm.model import BoxKind, QuantifierType
from repro.rewrite.rule import RewriteRule
from repro.rewrite.common import in_own_subtree, total_uses
from repro.rewrite.pushdown import can_push_into_child, push_predicate_into_child


class LocalMagicRule(RewriteRule):
    """Push local predicates into private copies of shared views."""

    name = "local-magic"
    phases = frozenset({1})
    priority = 45  # after plain pushdown (40), before merge (50)

    def applies_to(self, box, context):
        return box.kind == BoxKind.SELECT and bool(box.predicates)

    def apply(self, box, context):
        local = set(box.quantifiers)
        for predicate in list(box.predicates):
            refs = qe.column_refs(predicate)
            quantifiers = {ref.quantifier for ref in refs}
            if quantifiers - local or len(quantifiers) != 1:
                continue
            quantifier = next(iter(quantifiers))
            if quantifier.qtype != QuantifierType.FOREACH:
                continue
            child = quantifier.input_box
            if child.kind == BoxKind.BASE or child.is_special:
                continue
            if total_uses(context.graph, child) <= 1:
                continue  # the plain pushdown rule owns single-use children
            if in_own_subtree(child):
                continue
            if not can_push_into_child(context.graph, predicate, quantifier):
                continue
            self._push_into_copy(box, predicate, quantifier, context)
            return True
        return False

    def _push_into_copy(self, box, predicate, quantifier, context):
        from repro.magic.adorn import predicate_signature

        graph = context.graph
        child = quantifier.input_box
        signature = predicate_signature(predicate, quantifier)
        origin = child.properties.get("adorned_origin", child.box_id)
        cache_key = ("local-magic", origin, signature)
        cached = graph.adorned_copies.get(cache_key)
        if cached is not None:
            quantifier.input_box = cached
            box.predicates.remove(predicate)
            return
        copy, quantifier_map = clone_box(
            graph, child, name="%s'" % child.name, deep_derived=True
        )
        copy.properties["adorned_origin"] = origin
        # Inherit any join-order oracle entries for the cloned boxes.
        by_box = {}
        for old, new in quantifier_map.items():
            if old.parent_box is None or new.parent_box is None:
                continue
            entry = by_box.setdefault(
                id(old.parent_box), (old.parent_box, new.parent_box, {})
            )
            entry[2][old.name] = new.name
        for old_box, new_box, name_map in by_box.values():
            order = context.join_orders.get(old_box.box_id)
            if order:
                context.join_orders[new_box.box_id] = [
                    name_map.get(name, name) for name in order
                ]
        quantifier.input_box = copy
        if push_predicate_into_child(graph, predicate, quantifier):
            box.predicates.remove(predicate)
            graph.adorned_copies[cache_key] = copy
