"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type. Subsystems raise the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``context`` carries structured diagnostics (which subsystem, how far
    along, which limit, ...) so callers can react programmatically instead
    of parsing the message. Subclasses that accept positional arguments
    keep working: ``context`` is keyword-only.
    """

    def __init__(self, *args, context=None):
        super().__init__(*args)
        self.context = dict(context or {})


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexError(SqlError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message, line, column):
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot make sense of the token stream."""

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column or 0)
        super().__init__(message)
        self.line = line
        self.column = column


class CatalogError(ReproError):
    """Raised for unknown tables/columns or conflicting definitions."""


class BindError(ReproError):
    """Raised when names in a query cannot be resolved against the catalog."""


class QgmError(ReproError):
    """Raised when a QGM graph is malformed or an invariant is violated."""


class RewriteError(ReproError):
    """Raised when a rewrite rule produces or encounters an invalid graph."""


class MagicError(RewriteError):
    """Raised by the EMST machinery (adornment mismatch, bad sips, ...)."""


class PlanError(ReproError):
    """Raised by the plan optimizer."""


class ExecutionError(ReproError):
    """Raised by the execution engine (cardinality violations etc.)."""


class ResourceExhaustedError(ExecutionError):
    """Raised by the :class:`~repro.resilience.ResourceGovernor` when a
    per-query budget (wall-clock deadline, rewrite sweeps, fixpoint rounds,
    materialized rows, correlated invocations) is exceeded.

    ``limit`` names the budget that tripped, ``where`` the pipeline stage,
    and ``progress`` how far the query got; all three are repeated in
    :attr:`ReproError.context` for structured consumption.
    """

    def __init__(self, message, limit=None, where=None, progress=None, context=None):
        merged = {"limit": limit, "where": where, "progress": progress}
        merged.update(context or {})
        super().__init__(message, context=merged)
        self.limit = limit
        self.where = where
        self.progress = progress


class NotSupportedError(ReproError):
    """Raised for SQL constructs outside the supported subset."""
