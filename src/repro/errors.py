"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type. Subsystems raise the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexError(SqlError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message, line, column):
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot make sense of the token stream."""

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column or 0)
        super().__init__(message)
        self.line = line
        self.column = column


class CatalogError(ReproError):
    """Raised for unknown tables/columns or conflicting definitions."""


class BindError(ReproError):
    """Raised when names in a query cannot be resolved against the catalog."""


class QgmError(ReproError):
    """Raised when a QGM graph is malformed or an invariant is violated."""


class RewriteError(ReproError):
    """Raised when a rewrite rule produces or encounters an invalid graph."""


class MagicError(RewriteError):
    """Raised by the EMST machinery (adornment mismatch, bad sips, ...)."""


class PlanError(ReproError):
    """Raised by the plan optimizer."""


class ExecutionError(ReproError):
    """Raised by the execution engine (cardinality violations etc.)."""


class NotSupportedError(ReproError):
    """Raised for SQL constructs outside the supported subset."""
