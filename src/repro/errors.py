"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type. Subsystems raise the most specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``context`` carries structured diagnostics (which subsystem, how far
    along, which limit, ...) so callers can react programmatically instead
    of parsing the message. Subclasses that accept positional arguments
    keep working: ``context`` is keyword-only.
    """

    def __init__(self, *args, context=None):
        super().__init__(*args)
        self.context = dict(context or {})


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexError(SqlError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message, line, column):
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot make sense of the token stream."""

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column or 0)
        super().__init__(message)
        self.line = line
        self.column = column


class CatalogError(ReproError):
    """Raised for unknown tables/columns or conflicting definitions."""


class BindError(ReproError):
    """Raised when names in a query cannot be resolved against the catalog."""


class QgmError(ReproError):
    """Raised when a QGM graph is malformed or an invariant is violated."""


class RewriteError(ReproError):
    """Raised when a rewrite rule produces or encounters an invalid graph."""


class MagicError(RewriteError):
    """Raised by the EMST machinery (adornment mismatch, bad sips, ...)."""


class PlanError(ReproError):
    """Raised by the plan optimizer."""


class ExecutionError(ReproError):
    """Raised by the execution engine (cardinality violations etc.)."""


class ResourceExhaustedError(ExecutionError):
    """Raised by the :class:`~repro.resilience.ResourceGovernor` when a
    per-query budget (wall-clock deadline, rewrite sweeps, fixpoint rounds,
    materialized rows, correlated invocations) is exceeded.

    ``limit`` names the budget that tripped, ``where`` the pipeline stage,
    and ``progress`` how far the query got; all three are repeated in
    :attr:`ReproError.context` for structured consumption. ``retry_after``
    (seconds, may be None) is a machine-readable hint for admission and
    retry layers: how long to wait before the same request is worth
    resubmitting — also mirrored into ``context`` so wire serializers
    need not special-case the attribute.
    """

    #: Budget errors are deterministic for a fixed query and budget: the
    #: same request retried immediately fails identically, so they are not
    #: retryable by default. Subclasses representing *load* conditions
    #: (queue full) override this.
    retryable = False

    def __init__(self, message, limit=None, where=None, progress=None,
                 retry_after=None, context=None):
        merged = {
            "limit": limit,
            "where": where,
            "progress": progress,
            "retry_after": retry_after,
        }
        merged.update(context or {})
        super().__init__(message, context=merged)
        self.limit = limit
        self.where = where
        self.progress = progress
        self.retry_after = retry_after


class QueryCancelledError(ExecutionError):
    """Raised at a cooperative cancellation checkpoint after the query's
    cancel token was set (client disconnect, server shutdown, admin kill).

    Distinct from :class:`ResourceExhaustedError`: a cancelled query did
    not exceed any budget, and retrying it (with a live client) is safe —
    the engine guarantees cancelled queries leave no partial state.
    """

    retryable = True

    def __init__(self, message, where=None, reason=None, context=None):
        merged = {"where": where, "reason": reason}
        merged.update(context or {})
        super().__init__(message, context=merged)
        self.where = where
        self.reason = reason


class ServerOverloadedError(ResourceExhaustedError):
    """Raised by the admission controller when the server sheds a request
    because the concurrency gate and its bounded queue are both full.

    Carries a ``retry_after`` hint (seconds) computed from the observed
    service rate, so well-behaved clients back off instead of hammering.
    Always retryable: load is transient by definition.
    """

    retryable = True

    def __init__(self, message, retry_after=None, queue_depth=None,
                 active=None, context=None):
        merged = {"queue_depth": queue_depth, "active": active}
        merged.update(context or {})
        super().__init__(
            message,
            limit="admission",
            where="admission control",
            progress="request shed before execution",
            retry_after=retry_after,
            context=merged,
        )
        self.queue_depth = queue_depth
        self.active = active


class WorkerCrashedError(ExecutionError):
    """Raised by the worker pool when the process executing a query died
    before replying (SIGKILL, OOM, hard crash).

    The crash consumed the in-flight request but left no partial state
    behind: result-cache entries are stored only after a complete reply,
    and the crashed worker's private plan cache died with it. The pool
    respawns a replacement before this error reaches the client, so a
    retry lands on a healthy worker — always retryable.
    """

    retryable = True

    def __init__(self, message, pid=None, retry_after=None, context=None):
        merged = {"pid": pid, "retry_after": retry_after}
        merged.update(context or {})
        super().__init__(message, context=merged)
        self.pid = pid
        self.retry_after = retry_after


class NotSupportedError(ReproError):
    """Raised for SQL constructs outside the supported subset."""
