"""repro — a reproduction of *Implementation of Magic-sets in a Relational
Database System* (Mumick & Pirahesh, SIGMOD 1994).

The package implements the whole stack the paper describes: an SQL front
end, the Query Graph Model (QGM), a rule-based query-rewrite optimizer, the
Extended Magic-Sets Transformation (EMST) as a rewrite rule, a System-R
style plan optimizer feeding join orders to EMST through the §3.2 cost-
based heuristic, and an executable engine with bottom-up, correlated and
recursive (fixpoint) evaluation strategies.

Quickstart::

    from repro import Connection, Database

    db = Database()
    db.create_table("employee", ["empno", "empname", "workdept", "salary"],
                    primary_key=["empno"], rows=[...])
    conn = Connection(db)
    conn.run_script("CREATE VIEW v AS SELECT ...")
    outcome = conn.explain_execute("SELECT ... FROM v ...", strategy="emst")
"""

from repro.api import Connection, ExecutionOutcome, STRATEGIES
from repro.catalog import Catalog, ColumnDef, TableSchema
from repro.engine import CorrelatedEvaluator, Database, Evaluator, Table
from repro.errors import ReproError, ResourceExhaustedError
from repro.magic import EmstRule
from repro.resilience import (
    FallbackReport,
    FaultPlan,
    ResiliencePolicy,
    ResourceGovernor,
)
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import optimize_with_heuristic
from repro.qgm import build_query_graph, render_dot, render_text, validate_graph
from repro.rewrite import RewriteEngine, default_rules
from repro.sql import parse_script, parse_statement, to_sql

__version__ = "1.0.0"

__all__ = [
    "Connection",
    "ExecutionOutcome",
    "STRATEGIES",
    "Catalog",
    "ColumnDef",
    "TableSchema",
    "CorrelatedEvaluator",
    "Database",
    "Evaluator",
    "Table",
    "ReproError",
    "ResourceExhaustedError",
    "ResiliencePolicy",
    "ResourceGovernor",
    "FaultPlan",
    "FallbackReport",
    "EmstRule",
    "optimize_graph",
    "optimize_with_heuristic",
    "build_query_graph",
    "render_dot",
    "render_text",
    "validate_graph",
    "RewriteEngine",
    "default_rules",
    "parse_script",
    "parse_statement",
    "to_sql",
    "__version__",
]
