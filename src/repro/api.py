"""High-level public API.

:class:`Connection` wraps a :class:`~repro.engine.Database` and executes
SQL under one of the paper's three strategies:

* ``"original"`` — no query rewrite; plan-optimize join orders and evaluate
  bottom-up, fully materialising every view (Table 1, column *Original*),
* ``"correlated"`` — no query rewrite; evaluate derived-table references
  tuple-at-a-time with per-binding pushdown (column *Correlated*),
* ``"emst"`` — the full pipeline of Figure 3: rewrite phase 1 → plan pass 1
  → rewrite phase 2 with the EMST rule → rewrite phase 3 → plan pass 2 →
  execute the cheaper plan (column *EMST*),
* ``"norewrite"`` / ``"phase1"`` — ablations: no rules at all / every rule
  except EMST.

Example::

    from repro import Connection, Database

    db = Database()
    db.create_table("t", ["a", "b"], primary_key=["a"], rows=[(1, 2)])
    conn = Connection(db)
    result = conn.execute("SELECT a FROM t WHERE b = 2")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import NotSupportedError, ReproError, ResourceExhaustedError
from repro.resilience.fallback import FallbackReport
from repro.sql import parse_script
from repro.sql.ast import CreateTable, CreateView, Delete, InsertValues, Query, Update
from repro.qgm import build_query_graph, render_text, validate_graph
from repro.engine import CorrelatedEvaluator, Evaluator
from repro.optimizer import optimize_graph
from repro.optimizer.heuristic import optimize_with_heuristic

STRATEGIES = ("original", "correlated", "emst", "phase1", "norewrite")

#: Execution engines: ``"batch"`` is the columnar vectorized executor,
#: ``"tuple"`` the classic row-at-a-time engine (and differential oracle).
EXECUTORS = ("tuple", "batch")


def _build_evaluator(graph, database, strategy, executor, join_orders,
                     governor, fault_plan):
    """The evaluator for one (strategy, executor) choice.

    The ``correlated`` strategy is tuple-at-a-time by definition (its
    whole point is per-binding evaluation), so it ignores the executor
    switch; every set-oriented strategy runs columnar under
    ``executor="batch"``.
    """
    if executor not in EXECUTORS:
        raise ReproError(
            "unknown executor %r (expected one of %s)"
            % (executor, ", ".join(EXECUTORS))
        )
    if strategy == "correlated":
        return CorrelatedEvaluator(
            graph, database, join_orders=join_orders,
            governor=governor, fault_plan=fault_plan,
        )
    if executor == "batch":
        from repro.engine.columnar import BatchEvaluator

        evaluator_class = BatchEvaluator
    else:
        evaluator_class = Evaluator
    # The Original strategy re-evaluates correlated subqueries per outer
    # row without caching, like the systems of the era.
    return evaluator_class(
        graph,
        database,
        join_orders=join_orders,
        memoize_correlated=(strategy == "emst"),
        governor=governor,
        fault_plan=fault_plan,
    )


def _describe_rules(context):
    """Per-rule observability lines for ``Connection.explain``."""
    names = sorted(
        set(context.rule_seconds)
        | set(context.firing_counts)
        | set(context.rollback_counts)
    )
    if not names:
        return []
    lines = ["rule timings:"]
    for name in names:
        line = "  %s: fired %d, %.4fs" % (
            name,
            context.firing_counts.get(name, 0),
            context.rule_seconds.get(name, 0.0),
        )
        rollbacks = context.rollback_counts.get(name, 0)
        if rollbacks:
            line += ", rollbacks %d" % rollbacks
        if name in context.quarantined:
            line += ", quarantined (%s)" % context.quarantined[name]
        violations = getattr(context, "soundness_violations", {}).get(name)
        if violations:
            line += ", soundness violations [%s]" % ", ".join(violations)
        lines.append(line)
    return lines


def _constant_value(expr):
    """Evaluate a constant AST expression (INSERT ... VALUES rows)."""
    from repro.sql import ast as sql_ast
    from repro.engine.expressions import arithmetic

    if isinstance(expr, sql_ast.Literal):
        return expr.value
    if isinstance(expr, sql_ast.UnaryOp) and expr.op == "-":
        value = _constant_value(expr.operand)
        return None if value is None else -value
    if isinstance(expr, sql_ast.BinaryOp) and expr.op in ("+", "-", "*", "/", "%", "||"):
        return arithmetic(
            expr.op, _constant_value(expr.left), _constant_value(expr.right)
        )
    raise NotSupportedError(
        "INSERT values must be constants, got %r" % type(expr).__name__
    )


@dataclass
class ExecutionOutcome:
    """A query result plus everything observed while producing it."""

    result: object
    strategy: str
    graph: object
    plan: Optional[object] = None
    heuristic: Optional[object] = None
    elapsed_seconds: float = 0.0
    rewrite_seconds: float = 0.0
    #: Which execution engine produced the result ("tuple" or "batch").
    executor: str = "tuple"
    stats: Dict[str, int] = field(default_factory=dict)
    #: A FallbackReport when the query ran under a ResiliencePolicy.
    resilience: Optional[object] = None
    #: An :class:`~repro.analysis.AnalysisReport` over the executed graph
    #: when the query ran with ``analyze=True``.
    diagnostics: Optional[object] = None

    @property
    def rows(self):
        return self.result.rows

    @property
    def columns(self):
        return self.result.columns

    @property
    def fallback_strategy(self):
        """The strategy the query effectively ran under (differs from
        ``strategy`` only when the resilience layer degraded it)."""
        if self.resilience is not None:
            return self.resilience.fallback_strategy
        return self.strategy

    @property
    def quarantined_rules(self):
        return (
            sorted(self.resilience.quarantined)
            if self.resilience is not None
            else []
        )


@dataclass
class PreparedQuery:
    """A query that has been parsed, rewritten and planned once; each
    ``execute`` call only runs the execution engine (the paper's elapsed
    times measure execution of already-optimized queries)."""

    database: object
    graph: object
    plan: Optional[object]
    heuristic: Optional[object]
    strategy: str
    resilience: Optional[object] = None
    executor: str = "tuple"

    def execute(self):
        join_orders = self.plan.join_orders if self.plan is not None else None
        governor = fault_plan = None
        if self.resilience is not None:
            # Budgets are per execution: rewrite/plan costs were paid at
            # prepare time, so each run gets the full execution budget.
            self.resilience.governor.begin_query()
            governor = self.resilience.governor
            fault_plan = self.resilience.fault_plan
        evaluator = _build_evaluator(
            self.graph, self.database, self.strategy, self.executor,
            join_orders, governor, fault_plan,
        )
        result = evaluator.run()
        return result, evaluator.stats


class Connection:
    """Executes SQL against a database under a chosen strategy.

    ``resilience`` (a :class:`~repro.resilience.ResiliencePolicy`) makes
    every query on this connection fail soft: per-query resource budgets,
    rule rollback + quarantine during rewrite, and degradation along the
    strategy chain ``emst -> phase1 -> original`` instead of raising. The
    same policy object can also be passed per call to ``execute_query``/
    ``explain_execute``.

    ``executor`` selects the execution engine for every query on the
    connection: ``"tuple"`` (default) is the classic row-at-a-time
    evaluator, ``"batch"`` the columnar vectorized one. Under a
    resilience policy a batch-executor failure falls back to the tuple
    engine on the same strategy before the strategy chain degrades.
    """

    def __init__(self, database, resilience=None, executor="tuple"):
        if executor not in EXECUTORS:
            raise ReproError(
                "unknown executor %r (expected one of %s)"
                % (executor, ", ".join(EXECUTORS))
            )
        self.database = database
        self.resilience = resilience
        self.executor = executor

    def prepare_statement(self, sql_text, strategy="emst", resilience=None,
                          executor=None):
        """Parse, rewrite and plan once; returns a :class:`PreparedQuery`."""
        resilience = resilience if resilience is not None else self.resilience
        executor = executor if executor is not None else self.executor
        if resilience is not None:
            resilience.begin_query()
        script = parse_script(sql_text)
        queries = script.queries
        if len(queries) != 1:
            raise ReproError("expected exactly one query, got %d" % len(queries))
        with self.database.catalog.scoped_views(script.views):
            graph, plan, heuristic, _ = self.prepare(
                queries[0], strategy, resilience=resilience
            )
        validate_graph(graph)
        return PreparedQuery(
            database=self.database,
            graph=graph,
            plan=plan,
            heuristic=heuristic,
            strategy=strategy,
            resilience=resilience,
            executor=executor,
        )

    # -- statements -------------------------------------------------------------

    def run_script(self, sql_text, strategy="emst"):
        """Run a multi-statement script. CREATE TABLE/VIEW and INSERT
        statements update the database; each query executes. Returns the
        outcome of the last query (None when the script has no query)."""
        script = parse_script(sql_text)
        outcome = None
        for statement in script.statements:
            if isinstance(statement, CreateView):
                self.database.catalog.add_view(statement)
            elif isinstance(statement, CreateTable):
                self._create_table(statement)
            elif isinstance(statement, InsertValues):
                self._insert_values(statement)
            elif isinstance(statement, Delete):
                self._delete(statement)
            elif isinstance(statement, Update):
                self._update(statement)
            elif isinstance(statement, Query):
                outcome = self.execute_query(statement, strategy=strategy)
            else:
                raise NotSupportedError(
                    "unsupported statement %r" % type(statement).__name__
                )
        return outcome

    def _create_table(self, statement):
        from repro.catalog import ColumnDef

        self.database.create_table(
            statement.name,
            [
                ColumnDef(
                    name=c.name,
                    type_name=c.type_name,
                    not_null=c.not_null or c.primary_key,
                )
                for c in statement.columns
            ],
            primary_key=statement.primary_key,
            unique_keys=statement.unique_keys,
            foreign_keys=[
                (fk.columns, fk.ref_table, fk.ref_columns)
                for fk in statement.foreign_keys
            ],
        )

    def _insert_values(self, statement):
        rows = [
            tuple(_constant_value(v) for v in row) for row in statement.rows
        ]
        self.database.insert(statement.table, rows)
        self.database.analyze(statement.table)

    def _matching_row_mask(self, table_name, where):
        """Evaluate a DELETE/UPDATE predicate over a base table; returns a
        boolean per stored row (positionally). Reuses the query pipeline:
        subqueries and correlation in the predicate work unchanged."""
        from repro.sql import ast as sql_ast
        from repro.qgm import build_query_graph
        from repro.qgm.model import QuantifierType
        from repro.engine import Evaluator
        from repro.engine.expressions import evaluate, predicate_holds

        if where is None:
            return [True] * len(self.database.table(table_name).rows)
        query = sql_ast.Query(
            body=sql_ast.SelectCore(
                items=[sql_ast.SelectItem(expr=sql_ast.Star())],
                from_tables=[sql_ast.TableRef(name=table_name)],
                where=where,
            )
        )
        graph = build_query_graph(query, self.database.catalog)
        box = graph.top_box
        quantifier = box.foreach_quantifiers()[0]
        evaluator = Evaluator(graph, self.database)
        mask = []
        for row in self.database.table(table_name).rows:
            env = {quantifier: row}
            mask.append(self._row_matches(evaluator, box, quantifier, env))
        return mask

    @staticmethod
    def _row_matches(evaluator, box, quantifier, env):
        from repro.qgm.model import QuantifierType
        from repro.engine.expressions import predicate_holds

        # Bind scalar subqueries, then test predicates and E/A quantifiers,
        # mirroring one select-box iteration for a single candidate row.
        for sub in box.quantifiers:
            if sub.qtype == QuantifierType.SCALAR:
                env = dict(env)
                env[sub] = evaluator._scalar_row(
                    sub, env, sub.selector_predicates
                )
        from repro.qgm import expr as qe

        filter_quantifiers = [
            q
            for q in box.quantifiers
            if q.qtype in (QuantifierType.EXISTENTIAL, QuantifierType.ANTI)
        ]
        for predicate in box.predicates:
            involved = {
                r.quantifier
                for r in qe.column_refs(predicate)
                if r.quantifier in set(filter_quantifiers)
            }
            if involved:
                continue
            if not predicate_holds(predicate, env):
                return False
        for sub in filter_quantifiers:
            attached = [
                p
                for p in box.predicates
                if any(
                    r.quantifier is sub for r in qe.column_refs(p)
                )
            ]
            if not evaluator._passes_filter_quantifier(sub, attached, env):
                return False
        return True

    def _delete(self, statement):
        table = self.database.table(statement.table)
        mask = self._matching_row_mask(statement.table, statement.where)
        table.rows = [row for row, hit in zip(table.rows, mask) if not hit]
        table.invalidate_indexes()
        self.database.analyze(statement.table)

    def _update(self, statement):
        from repro.sql import ast as sql_ast
        from repro.qgm import build_query_graph
        from repro.engine.expressions import evaluate

        table = self.database.table(statement.table)
        mask = self._matching_row_mask(statement.table, statement.where)

        # Build the assignment expressions against the table's scope.
        query = sql_ast.Query(
            body=sql_ast.SelectCore(
                items=[
                    sql_ast.SelectItem(expr=value, alias="a%d" % index)
                    for index, (_, value) in enumerate(statement.assignments)
                ],
                from_tables=[sql_ast.TableRef(name=statement.table)],
            )
        )
        graph = build_query_graph(query, self.database.catalog)
        box = graph.top_box
        quantifier = box.foreach_quantifiers()[0]
        targets = [
            table.schema.column_ordinal(column)
            for column, _ in statement.assignments
        ]
        new_rows = []
        for row, hit in zip(table.rows, mask):
            if not hit:
                new_rows.append(row)
                continue
            env = {quantifier: row}
            values = [evaluate(column.expr, env) for column in box.columns]
            updated = list(row)
            for ordinal, value in zip(targets, values):
                updated[ordinal] = value
            new_rows.append(tuple(updated))
        table.rows = new_rows
        table.invalidate_indexes()
        self.database.analyze(statement.table)

    def execute(self, sql_text, strategy="emst", executor=None):
        """Parse and execute a single query; returns the Result."""
        return self.explain_execute(
            sql_text, strategy=strategy, executor=executor
        ).result

    def explain_execute(self, sql_text, strategy="emst", resilience=None,
                        analyze=False, executor=None):
        """Parse and execute a single query; returns an ExecutionOutcome.

        ``analyze=True`` additionally runs the full static-analysis suite
        (:func:`repro.analysis.analyze_graph`) over the graph that was
        executed; the report lands on ``outcome.diagnostics`` and its
        severity counts in ``outcome.stats["analysis"]``.
        """
        script = parse_script(sql_text)
        queries = script.queries
        if len(queries) != 1:
            raise ReproError("expected exactly one query, got %d" % len(queries))
        with self.database.catalog.scoped_views(script.views):
            return self.execute_query(
                queries[0], strategy=strategy, resilience=resilience,
                analyze=analyze, executor=executor,
            )

    # -- core ---------------------------------------------------------------------

    def prepare(self, query, strategy="emst", resilience=None):
        """Build (and rewrite/plan per strategy) the query graph; returns
        (graph, plan_or_None, heuristic_or_None, rewrite_seconds)."""
        if strategy not in STRATEGIES:
            raise ReproError(
                "unknown strategy %r (expected one of %s)"
                % (strategy, ", ".join(STRATEGIES))
            )
        started = time.perf_counter()
        graph = build_query_graph(query, self.database.catalog)
        if strategy == "norewrite":
            return graph, None, None, time.perf_counter() - started
        if strategy in ("original", "correlated"):
            plan = optimize_graph(graph, self.database.catalog)
            return graph, plan, None, time.perf_counter() - started
        heuristic = optimize_with_heuristic(
            graph,
            self.database.catalog,
            use_emst=(strategy == "emst"),
            resilience=resilience,
        )
        return (
            heuristic.graph,
            heuristic.plan,
            heuristic,
            time.perf_counter() - started,
        )

    def execute_query(self, query, strategy="emst", resilience=None,
                      analyze=False, executor=None):
        resilience = resilience if resilience is not None else self.resilience
        executor = executor if executor is not None else self.executor
        if resilience is None:
            return self._execute_once(
                query, strategy, None, analyze=analyze, executor=executor
            )
        resilience.begin_query()
        attempts = []
        last_error = None
        # The degradation lattice: for every strategy in the chain, try
        # the requested executor first, then (if that was "batch") retry
        # the same strategy on the tuple engine before degrading the
        # strategy — an executor bug must never cost rewrite quality.
        candidates = []
        for candidate in resilience.chain_for(strategy):
            candidates.append((candidate, executor))
            if executor == "batch" and candidate != "correlated":
                candidates.append((candidate, "tuple"))
        for candidate, candidate_executor in candidates:
            try:
                outcome = self._execute_once(
                    query, candidate, resilience, analyze=analyze,
                    executor=candidate_executor,
                )
            except Exception as exc:
                # Fail soft on *anything* a strategy threw — a corrupted
                # graph can surface as an arbitrary exception far from the
                # rule that broke it. The last chain entry re-raises. Blown
                # budgets propagate (unless the policy opts in): a limit
                # exceeded under emst would be exceeded under original too
                # — and a blown budget on the batch engine would also blow
                # on the (slower) tuple engine.
                if (
                    isinstance(exc, ResourceExhaustedError)
                    and not resilience.fallback_on_exhaustion
                ):
                    raise
                attempts.append(
                    (
                        candidate
                        if candidate_executor == executor
                        else "%s (%s executor)" % (candidate, candidate_executor),
                        "%s: %s" % (type(exc).__name__, exc),
                    )
                )
                last_error = exc
                continue
            outcome.resilience = FallbackReport(
                requested=strategy,
                executed=candidate,
                attempts=attempts,
                quarantined=dict(resilience.quarantine.reasons),
                requested_executor=executor,
                executed_executor=candidate_executor,
            )
            return outcome
        raise last_error

    def _execute_once(self, query, strategy, resilience, analyze=False,
                      executor="tuple"):
        """One prepare + execute under one (strategy, executor); no fallback."""
        graph, plan, heuristic, rewrite_seconds = self.prepare(
            query, strategy, resilience=resilience
        )
        validate_graph(graph)
        report = None
        if analyze:
            from repro.analysis import analyze_graph

            report = analyze_graph(graph, catalog=self.database.catalog)
        join_orders = plan.join_orders if plan is not None else None
        governor = resilience.governor if resilience is not None else None
        fault_plan = resilience.fault_plan if resilience is not None else None
        started = time.perf_counter()
        evaluator = _build_evaluator(
            graph, self.database, strategy, executor,
            join_orders, governor, fault_plan,
        )
        result = evaluator.run()
        elapsed = time.perf_counter() - started
        stats = evaluator.stats.as_dict()
        if heuristic is not None and heuristic.context is not None:
            stats.update(heuristic.context.observability())
        if heuristic is not None and heuristic.relaxed_distinct:
            stats["relaxed_distinct"] = list(heuristic.relaxed_distinct)
        if report is not None:
            stats["analysis"] = report.counts()
        return ExecutionOutcome(
            result=result,
            strategy=strategy,
            graph=graph,
            plan=plan,
            heuristic=heuristic,
            elapsed_seconds=elapsed,
            rewrite_seconds=rewrite_seconds,
            executor=executor,
            stats=stats,
            diagnostics=report,
        )

    def explain(self, sql_text, strategy="emst", executor=None):
        """Return a textual explanation: the (rewritten) graph and plan."""
        executor = executor if executor is not None else self.executor
        script = parse_script(sql_text)
        queries = script.queries
        if len(queries) != 1:
            raise ReproError("expected exactly one query, got %d" % len(queries))
        with self.database.catalog.scoped_views(script.views):
            graph, plan, heuristic, _ = self.prepare(queries[0], strategy)
        parts = ["strategy: %s" % strategy]
        parts.append(
            "executor: %s%s"
            % (
                executor,
                " (columnar, falls back to tuple on error)"
                if executor == "batch"
                else "",
            )
        )
        if heuristic is not None:
            parts.append(
                "emst used: %s (cost %.1f vs %.1f without)"
                % (
                    heuristic.used_emst,
                    heuristic.cost_with_emst,
                    heuristic.cost_without_emst,
                )
            )
            if heuristic.context is not None:
                parts.extend(_describe_rules(heuristic.context))
        if plan is not None:
            parts.append(plan.describe())
        parts.append(render_text(graph))
        from repro.optimizer.explain import physical_plan

        parts.append("physical plan:")
        parts.append(physical_plan(graph, plan, self.database.catalog))
        return "\n".join(parts)
