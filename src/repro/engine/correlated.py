"""The *Correlated* execution strategy of Table 1.

This evaluator models how a pre-magic commercial system (the paper's DB2
baseline) executes a complex query after *correlation*: every reference to
a derived table (view, grouped subquery, set operation) is evaluated
tuple-at-a-time — for each outer row, the applicable equality predicates
are turned into parameter bindings that are pushed down into a fresh
evaluation of the derived table, all the way to index lookups on base
tables.

This is excellent when the outer is tiny (one binding → one cheap, filtered
evaluation: the paper's experiments A and F, where Correlated narrowly
beats EMST) and catastrophic when the outer is large or the binding cannot
be pushed below an aggregate or a computed column (experiments C and D,
where Correlated is *slower than the original query*). The instability is
the paper's core argument for magic.

Set ``memoize=True`` for the ablation where repeated bindings reuse the
previous evaluation (not something the 1990s systems did).
"""

from __future__ import annotations

from repro.errors import ExecutionError, NotSupportedError
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType
from repro.qgm.stratum import is_recursive
from repro.engine.evaluator import (
    CHECKPOINT_INTERVAL,
    Result,
    EvaluatorStats,
    _apply_order_limit,
    _dedupe,
)
from repro.engine.expressions import (
    compile_expr,
    compile_predicate,
    evaluate,
    predicate_holds,
)


class CorrelatedEvaluator:
    """Tuple-at-a-time evaluation with per-binding pushdown."""

    def __init__(
        self, graph, database, join_orders=None, memoize=False,
        governor=None, fault_plan=None,
    ):
        if is_recursive(graph):
            raise NotSupportedError(
                "the correlated strategy does not support recursive queries"
            )
        self.graph = graph
        self.database = database
        self.join_orders = join_orders or {}
        self.memoize = memoize
        # Resilience hooks (see Evaluator): optional metering + injection.
        self.governor = governor
        self.fault_plan = fault_plan
        self.stats = EvaluatorStats()
        self._probe_budget = CHECKPOINT_INTERVAL
        self._memo = {}
        self._externals_cache = {}
        self._compiled = {}
        self._compiled_predicates = {}

    def _fn(self, expr):
        fn = self._compiled.get(id(expr))
        if fn is None:
            fn = compile_expr(expr)
            self._compiled[id(expr)] = fn
        return fn

    def _pred(self, expr):
        fn = self._compiled_predicates.get(id(expr))
        if fn is None:
            fn = compile_predicate(expr)
            self._compiled_predicates[id(expr)] = fn
        return fn

    def _checkpoint(self, box):
        """Cooperative cancellation/deadline checkpoint for the per-binding
        probe loops (same cadence as the set-oriented evaluator)."""
        if self.governor is None:
            return
        self._probe_budget -= 1
        if self._probe_budget <= 0:
            self._probe_budget = CHECKPOINT_INTERVAL
            self.governor.checkpoint(
                "correlated join processing in box %r" % box.name
            )

    def run(self):
        top = self.graph.top_box
        rows = self._eval_box(top, {}, {})
        rows = _apply_order_limit(rows, self.graph.order_by, self.graph.limit)
        return Result(columns=top.column_names, rows=rows)

    # -- dispatch ------------------------------------------------------------

    def _eval_box(self, box, env, filters):
        """Rows of ``box`` under outer bindings ``env``, restricted by
        ``filters`` (lower-cased output column name → required value)."""
        self.stats.box_evaluations += 1
        if self.fault_plan is not None:
            self.fault_plan.on_box_evaluation(box.name)
        if self.governor is not None:
            if env:
                self.governor.charge_correlated(
                    "correlated evaluation of box %r" % box.name
                )
            else:
                self.governor.check_deadline("evaluation of box %r" % box.name)
        memoizable = self.memoize and not self._is_correlated(box)
        if memoizable:
            key = (id(box), tuple(sorted(filters.items())))
            cached = self._memo.get(key)
            if cached is not None:
                return cached
        if box.kind == BoxKind.BASE:
            rows = self._eval_base(box, filters)
        elif box.kind == BoxKind.SELECT:
            rows = self._eval_select(box, env, filters)
        elif box.kind == BoxKind.GROUPBY:
            rows = self._eval_groupby(box, env, filters)
        elif box.kind == BoxKind.UNION:
            rows = []
            for quantifier in box.quantifiers:
                rows.extend(
                    self._eval_box(
                        quantifier.input_box,
                        env,
                        _map_positional(filters, box, quantifier.input_box),
                    )
                )
        elif box.kind in (BoxKind.INTERSECT, BoxKind.EXCEPT):
            rows = self._eval_intersect_except(box, env, filters)
        elif box.kind == BoxKind.OUTERJOIN:
            rows = self._eval_outerjoin(box, env, filters)
        else:
            raise ExecutionError("cannot evaluate box kind %r" % box.kind)
        if box.distinct == DistinctMode.ENFORCE:
            rows = _dedupe(rows)
        self.stats.rows_produced += len(rows)
        if self.governor is not None:
            self.governor.charge_rows(len(rows), "evaluation of box %r" % box.name)
        if memoizable:
            self._memo[key] = rows
        return rows

    def _is_correlated(self, box):
        """True when ``box``'s subtree references quantifiers outside it
        (such a box's rows depend on more than the pushed filters)."""
        cached = self._externals_cache.get(id(box))
        if cached is not None:
            return cached
        subtree = set()
        stack = [box]
        members = []
        while stack:
            current = stack.pop()
            if id(current) in subtree:
                continue
            subtree.add(id(current))
            members.append(current)
            for quantifier in current.quantifiers:
                stack.append(quantifier.input_box)
        correlated = False
        for member in members:
            for expression in member.all_expressions():
                for ref in qe.column_refs(expression):
                    owner = ref.quantifier.parent_box
                    if owner is not None and id(owner) not in subtree:
                        correlated = True
                        break
                if correlated:
                    break
            if correlated:
                break
        self._externals_cache[id(box)] = correlated
        return correlated

    # -- base tables -------------------------------------------------------------

    def _eval_base(self, box, filters):
        table = self.database.table(box.table_name)
        if not filters:
            return table.rows
        # Use a hash index on the first filter column (the index access path
        # correlated execution depends on), then filter the rest.
        items = sorted(filters.items())
        first_col, first_value = items[0]
        candidates = table.index_on(first_col).get(first_value, [])
        if len(items) == 1:
            return list(candidates)
        rows = []
        ordinals = [(table.schema.column_ordinal(c), v) for c, v in items[1:]]
        for row in candidates:
            if all(row[ordinal] == value for ordinal, value in ordinals):
                rows.append(row)
        return rows

    # -- select boxes ---------------------------------------------------------------

    def _join_order(self, box):
        """Join order with every derived-table reference moved last.

        This is what *correlation* means: a view reference becomes a
        correlated subquery, evaluated once per row of the (base-table)
        outer — the strategy cannot choose to materialise the view first.
        Base-table quantifiers keep the plan optimizer's relative order.
        """
        ordered_names = self.join_orders.get(box.box_id)
        foreach = box.foreach_quantifiers()
        if ordered_names:
            by_name = {q.name: q for q in foreach}
            ordered = [by_name[name] for name in ordered_names if name in by_name]
            ordered += [q for q in foreach if q.name not in set(ordered_names)]
        else:
            ordered = foreach
        from repro.qgm.model import BoxKind

        base = [q for q in ordered if q.input_box.kind == BoxKind.BASE]
        derived = [q for q in ordered if q.input_box.kind != BoxKind.BASE]
        return base + derived

    def _eval_select(self, box, env, filters):
        local = set(box.quantifiers)
        # Map output filters onto quantifier-column filters where the output
        # column is a plain reference; the rest are residual output filters.
        pushed = {}  # quantifier -> {col: value}
        residual_filters = {}
        for name, value in filters.items():
            column = box.column(name)
            expr = column.expr
            if isinstance(expr, qe.QColRef) and expr.quantifier in local:
                pushed.setdefault(expr.quantifier, {})[expr.column.lower()] = value
            else:
                residual_filters[name] = value

        def order_with_filters_first(quantifiers):
            # Tuple-at-a-time execution starts from the quantifiers the
            # binding restricts (the index access path the correlated plan
            # is built around), keeping the optimizer's relative order
            # otherwise.
            filtered = [q for q in quantifiers if q in pushed]
            rest = [q for q in quantifiers if q not in pushed]
            return filtered + rest

        scalar_quantifiers = [
            q for q in box.quantifiers if q.qtype == QuantifierType.SCALAR
        ]
        filter_quantifiers = [
            q
            for q in box.quantifiers
            if q.qtype in (QuantifierType.EXISTENTIAL, QuantifierType.ANTI)
        ]
        non_foreach = set(scalar_quantifiers) | set(filter_quantifiers)

        def local_quantifiers_of(expression):
            return {
                ref.quantifier
                for ref in qe.column_refs(expression)
                if ref.quantifier in local
            }

        join_predicates = [
            p for p in box.predicates if not (local_quantifiers_of(p) & non_foreach)
        ]
        deferred = [
            p for p in box.predicates if local_quantifiers_of(p) & non_foreach
        ]

        envs = [dict(env)]
        bound = set()
        applied = set()
        for quantifier in order_with_filters_first(self._join_order(box)):
            applicable = []
            for predicate in join_predicates:
                if id(predicate) in applied:
                    continue
                locals_needed = local_quantifiers_of(predicate)
                if locals_needed <= (bound | {quantifier}):
                    applicable.append(predicate)
            # Equality predicates give per-tuple parameter bindings.
            bindable = []
            post = []
            for predicate in applicable:
                binding = _binding_equality(predicate, quantifier, local, bound)
                if binding is not None:
                    bindable.append(binding)
                else:
                    post.append(predicate)
            new_envs = []
            bindable_fns = [(column, self._fn(e)) for column, e in bindable]
            post_fns = [self._pred(p) for p in post]
            for current in envs:
                per_env_filters = dict(pushed.get(quantifier, {}))
                skip = False
                for column, probe_fn in bindable_fns:
                    value = probe_fn(current)
                    if value is None:
                        skip = True
                        break
                    existing = per_env_filters.get(column)
                    if existing is not None and existing != value:
                        skip = True
                        break
                    per_env_filters[column] = value
                if skip:
                    continue
                self.stats.correlated_evaluations += 1
                for row in self._eval_box(
                    quantifier.input_box, current, per_env_filters
                ):
                    self.stats.join_probes += 1
                    self._checkpoint(box)
                    extended = dict(current)
                    extended[quantifier] = row
                    if all(fn(extended) for fn in post_fns):
                        new_envs.append(extended)
            envs = new_envs
            for predicate in applicable:
                applied.add(id(predicate))
            bound.add(quantifier)
            if not envs:
                break

        for predicate in join_predicates:
            if id(predicate) not in applied:
                envs = [e for e in envs if predicate_holds(predicate, e)]

        for quantifier in scalar_quantifiers:
            new_envs = []
            for current in envs:
                rows = self._eval_box(quantifier.input_box, current, {})
                if len(rows) > 1:
                    raise ExecutionError(
                        "scalar subquery %r returned %d rows"
                        % (quantifier.name, len(rows))
                    )
                row = rows[0] if rows else tuple(
                    [None] * len(quantifier.input_box.columns)
                )
                extended = dict(current)
                extended[quantifier] = row
                new_envs.append(extended)
            envs = new_envs
        for predicate in deferred:
            if not (local_quantifiers_of(predicate) & set(filter_quantifiers)):
                envs = [e for e in envs if predicate_holds(predicate, e)]

        for quantifier in filter_quantifiers:
            attached = [
                p for p in deferred if quantifier in local_quantifiers_of(p)
            ]
            envs = [
                current
                for current in envs
                if self._passes_filter_quantifier(quantifier, attached, current)
            ]

        projection = [self._fn(column.expr) for column in box.columns]
        rows = []
        for current in envs:
            rows.append(tuple(fn(current) for fn in projection))
        if residual_filters:
            ordinals = [
                (box.column_ordinal(name), value)
                for name, value in residual_filters.items()
            ]
            rows = [
                row
                for row in rows
                if all(row[ordinal] == value for ordinal, value in ordinals)
            ]
        return rows

    def _passes_filter_quantifier(self, quantifier, predicates, env):
        child = quantifier.input_box
        if quantifier.qtype == QuantifierType.EXISTENTIAL:
            # Push equality bindings into the subquery evaluation.
            filters = {}
            post = []
            for predicate in predicates:
                binding = _binding_equality(
                    predicate, quantifier, {quantifier}, set()
                )
                if binding is not None:
                    column, probe_expr = binding
                    value = evaluate(probe_expr, env)
                    if value is None:
                        return False
                    filters[column] = value
                else:
                    post.append(predicate)
            self.stats.correlated_evaluations += 1
            for row in self._eval_box(child, env, filters):
                extended = dict(env)
                extended[quantifier] = row
                if all(predicate_holds(p, extended) for p in post):
                    return True
            return False
        # ANTI: no pushdown (NOT IN must observe NULLs in the inner table).
        self.stats.correlated_evaluations += 1
        rows = self._eval_box(child, env, {})
        saw_unknown = False
        for row in rows:
            extended = dict(env)
            extended[quantifier] = row
            values = [evaluate(p, extended) for p in predicates]
            if all(v is True for v in values):
                return False
            if quantifier.null_aware and all(v is not False for v in values):
                saw_unknown = True
        return not (quantifier.null_aware and saw_unknown)

    # -- groupby boxes --------------------------------------------------------------------

    def _eval_groupby(self, box, env, filters):
        from repro.engine.aggregates import make_accumulator

        quantifier = box.quantifiers[0]
        child = quantifier.input_box

        # A filter on a group-key output column pushes into the input; a
        # filter on an aggregate column is applied after aggregation.
        child_filters = {}
        post_filters = {}
        for name, value in filters.items():
            column = box.column(name)
            expr = column.expr
            if (
                not isinstance(expr, qe.QAggregate)
                and isinstance(expr, qe.QColRef)
                and expr.quantifier is quantifier
            ):
                child_filters[expr.column.lower()] = value
            else:
                post_filters[name] = value

        input_rows = self._eval_box(child, env, child_filters)

        aggregate_columns = [
            (index, column.expr)
            for index, column in enumerate(box.columns)
            if isinstance(column.expr, qe.QAggregate)
        ]
        key_fns = [self._fn(k) for k in box.group_keys]
        arg_fns = [
            None if agg.arg is None else self._fn(agg.arg)
            for _, agg in aggregate_columns
        ]
        groups = {}
        order = []
        for row in input_rows:
            row_env = dict(env)
            row_env[quantifier] = row
            key = tuple(fn(row_env) for fn in key_fns)
            state = groups.get(key)
            if state is None:
                accumulators = [
                    make_accumulator(
                        agg.func, star=agg.arg is None, distinct=agg.distinct
                    )
                    for _, agg in aggregate_columns
                ]
                state = (accumulators, row_env)
                groups[key] = state
                order.append(key)
            accumulators, _ = state
            for accumulator, arg_fn in zip(accumulators, arg_fns):
                accumulator.add(None if arg_fn is None else arg_fn(row_env))

        rows = []
        if not groups and not box.group_keys:
            accumulators = [
                make_accumulator(agg.func, star=agg.arg is None, distinct=agg.distinct)
                for _, agg in aggregate_columns
            ]
            agg_iter = iter(accumulators)
            row = tuple(
                next(agg_iter).result()
                if isinstance(column.expr, qe.QAggregate)
                else None
                for column in box.columns
            )
            rows = [row]
        else:
            for key in order:
                accumulators, representative_env = groups[key]
                agg_results = {
                    index: accumulator.result()
                    for accumulator, (index, _) in zip(accumulators, aggregate_columns)
                }
                row = []
                for index, column in enumerate(box.columns):
                    if index in agg_results:
                        row.append(agg_results[index])
                    else:
                        row.append(evaluate(column.expr, representative_env))
                rows.append(tuple(row))
        if post_filters:
            ordinals = [
                (box.column_ordinal(name), value)
                for name, value in post_filters.items()
            ]
            rows = [
                row
                for row in rows
                if all(row[ordinal] == value for ordinal, value in ordinals)
            ]
        return rows

    def _eval_outerjoin(self, box, env, filters):
        """LEFT OUTER JOIN, tuple-at-a-time: filters on preserved-side
        columns push into the left child; everything else is residual (a
        filter on the NULL-padded side cannot be pushed)."""
        left_q, right_q = box.quantifiers
        left_filters = {}
        residual = {}
        for name, value in filters.items():
            expr = box.column(name).expr
            if isinstance(expr, qe.QColRef) and expr.quantifier is left_q:
                left_filters[expr.column.lower()] = value
            else:
                residual[name] = value
        left_rows = self._eval_box(left_q.input_box, env, left_filters)
        null_row = tuple([None] * len(right_q.input_box.columns))
        rows = []
        for left_row in left_rows:
            base_env = dict(env)
            base_env[left_q] = left_row
            # Per-tuple pushdown into the right side via ON equalities.
            right_filters = {}
            post = []
            skip = False
            for predicate in box.predicates:
                binding = _binding_equality(
                    predicate, right_q, set(box.quantifiers), {left_q}
                )
                if binding is not None:
                    column, probe = binding
                    value = evaluate(probe, base_env)
                    if value is None:
                        skip = True
                        break
                    right_filters[column] = value
                else:
                    post.append(predicate)
            matched = False
            if not skip:
                self.stats.correlated_evaluations += 1
                for right_row in self._eval_box(
                    right_q.input_box, base_env, right_filters
                ):
                    extended = dict(base_env)
                    extended[right_q] = right_row
                    if all(predicate_holds(p, extended) for p in post):
                        matched = True
                        rows.append(
                            tuple(evaluate(c.expr, extended) for c in box.columns)
                        )
            if not matched:
                extended = dict(base_env)
                extended[right_q] = null_row
                rows.append(tuple(evaluate(c.expr, extended) for c in box.columns))
        if residual:
            ordinals = [
                (box.column_ordinal(name), value) for name, value in residual.items()
            ]
            rows = [
                row
                for row in rows
                if all(row[ordinal] == value for ordinal, value in ordinals)
            ]
        return rows

    def _eval_intersect_except(self, box, env, filters):
        left_child = box.quantifiers[0].input_box
        right_child = box.quantifiers[1].input_box
        left = self._eval_box(left_child, env, _map_positional(filters, box, left_child))
        right = self._eval_box(
            right_child, env, _map_positional(filters, box, right_child)
        )
        right_counts = {}
        for row in right:
            right_counts[row] = right_counts.get(row, 0) + 1
        rows = []
        if box.kind == BoxKind.INTERSECT:
            if box.distinct == DistinctMode.ENFORCE:
                emitted = set()
                for row in left:
                    if row in right_counts and row not in emitted:
                        emitted.add(row)
                        rows.append(row)
            else:
                remaining = dict(right_counts)
                for row in left:
                    if remaining.get(row, 0) > 0:
                        remaining[row] -= 1
                        rows.append(row)
        else:
            if box.distinct == DistinctMode.ENFORCE:
                emitted = set()
                for row in left:
                    if row not in right_counts and row not in emitted:
                        emitted.add(row)
                        rows.append(row)
            else:
                remaining = dict(right_counts)
                for row in left:
                    if remaining.get(row, 0) > 0:
                        remaining[row] -= 1
                    else:
                        rows.append(row)
        return rows


def _map_positional(filters, box, child):
    """Translate output-column filters of a set-op box onto the child's
    positional column names."""
    if not filters:
        return {}
    own_names = [c.name.lower() for c in box.columns]
    child_names = [c.name.lower() for c in child.columns]
    out = {}
    for name, value in filters.items():
        position = own_names.index(name)
        out[child_names[position]] = value
    return out


def _binding_equality(predicate, quantifier, local, bound):
    """If ``predicate`` is ``quantifier.col = <expr over bound/outer>``,
    return (column_name_lower, probe_expr); else None."""
    if not (isinstance(predicate, qe.QBinary) and predicate.op == "="):
        return None
    for side, other in (
        (predicate.left, predicate.right),
        (predicate.right, predicate.left),
    ):
        if not isinstance(side, qe.QColRef) or side.quantifier is not quantifier:
            continue
        other_locals = {
            ref.quantifier for ref in qe.column_refs(other) if ref.quantifier in local
        }
        if quantifier in other_locals:
            continue
        if other_locals <= bound:
            return (side.column.lower(), other)
    return None
