"""Fixpoint evaluation of recursive strongly connected components.

The magic-sets transformation can turn a nonrecursive query into a
recursive one (one of the paper's motivations for why relational systems
resisted it), and users can write recursive views directly; either way the
query graph contains a cycle and the boxes in that strongly connected
component are evaluated together by fixpoint iteration.

Semantics are those of stratified Datalog: set semantics within a recursive
component (duplicates would make the fixpoint diverge), and negation or
aggregation *through* the cycle is rejected as non-stratified.

Evaluation is **semi-naive** where possible: a select box that references
exactly one component member directly (a *linear* rule — by far the common
case, and the only shape magic itself generates) is re-evaluated per round
against that member's *delta* (the rows discovered in the previous round)
instead of its full table, and a union box is *delta-batched* — after the
first round it concatenates only its member branches' deltas, since a
union is additive and its static branches cannot contribute anything new.
Other non-linear boxes fall back to full re-evaluation — still correct,
just more work.

Each round's output then goes through delta-batch dedup: boxes still
carrying DISTINCT enforcement collapse their own duplicates first (their
contract holds regardless of consumer — the duplicate-freeness proof
relaxes exactly the boxes where this pass is redundant), then one bulk
``dict.fromkeys`` pass and a bulk diff against the accumulated set keep
the fixpoint's set semantics.
"""

from __future__ import annotations

from repro.errors import QgmError
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType


def _dedupe(rows):
    return list(dict.fromkeys(rows))

# Retained name for backward compatibility; the governor owns the default.
_MAX_ROUNDS = 100000


def _check_stratified(component):
    member_ids = {id(box) for box in component}
    for box in component:
        for quantifier in box.quantifiers:
            through_cycle = id(quantifier.input_box) in member_ids
            if not through_cycle:
                continue
            if quantifier.qtype == QuantifierType.ANTI:
                raise QgmError(
                    "negation through recursion in box %r is not stratified"
                    % box.name
                )
            if box.kind == BoxKind.GROUPBY:
                raise QgmError(
                    "aggregation through recursion in box %r is not stratified"
                    % box.name
                )
            if box.kind == BoxKind.EXCEPT and quantifier is box.quantifiers[1]:
                raise QgmError(
                    "difference through recursion in box %r is not stratified"
                    % box.name
                )


def _linear_member_quantifier(box, member_ids):
    """If ``box`` is a select box referencing exactly one component member
    through exactly one foreach quantifier (and no member through E/S
    quantifiers), return that quantifier; else None."""
    if box.kind != BoxKind.SELECT:
        return None
    recursive = [
        q for q in box.quantifiers if id(q.input_box) in member_ids
    ]
    if len(recursive) != 1:
        return None
    quantifier = recursive[0]
    if quantifier.qtype != QuantifierType.FOREACH:
        return None
    return quantifier


def run_fixpoint(evaluator, component, governor=None):
    """Evaluate all boxes of a recursive component to a fixpoint.

    Fills ``evaluator._materialized`` for every member with deduplicated
    rows. Linear select boxes run semi-naive (delta-driven); everything
    else re-evaluates fully each round.

    Round and deadline budgets come from ``governor`` (or the evaluator's
    governor; a default governor enforces the historical 100000-round cap
    and raises :class:`~repro.errors.ResourceExhaustedError` naming the
    limit and the recursive component).
    """
    _check_stratified(component)

    if governor is None:
        governor = getattr(evaluator, "governor", None)
    if governor is None:
        from repro.resilience.governor import ResourceGovernor

        governor = ResourceGovernor()
    component_names = sorted(box.name for box in component)

    member_ids = {id(box) for box in component}
    seen = {id(box): set() for box in component}
    delta = {id(box): [] for box in component}
    for box in component:
        evaluator._materialized[id(box)] = []

    linear = {
        id(box): _linear_member_quantifier(box, member_ids) for box in component
    }
    union_children = {
        id(box): [q.input_box for q in box.quantifiers]
        for box in component
        if box.kind == BoxKind.UNION
    }
    # The runtime payoff of the duplicate-freeness proof inside the
    # fixpoint: a box the key analysis proves duplicate-free *without*
    # relying on an explicit enforcement emits provably disjoint row sets
    # each round on the additive (delta-driven) paths, so the per-round
    # dedup and known-set filtering can be skipped for it outright.
    # Boxes still carrying ENFORCE pay their own enforcement instead.
    from repro.qgm.keys import is_duplicate_free

    proven = {
        id(box): box.distinct != DistinctMode.ENFORCE
        and bool(is_duplicate_free(box, ignore_enforce=True))
        for box in component
    }
    additive = {
        id(box): linear[id(box)] is not None or id(box) in union_children
        for box in component
    }

    def clear_member_indexes():
        evaluator._index_cache = {
            key: value
            for key, value in evaluator._index_cache.items()
            if key[0] not in member_ids
        }

    rounds = 0
    changed = True
    while changed:
        rounds += 1
        governor.check_fixpoint_rounds(rounds, component_names)
        changed = False
        new_delta = {id(box): [] for box in component}
        for box in component:
            # Cooperative checkpoint per member: a deadline expiring or a
            # cancel token set mid-round aborts before the next member's
            # (potentially expensive) delta join, so cancellation latency
            # is bounded by one box evaluation, not one full round.
            governor.checkpoint(
                "fixpoint round %d, box %r" % (rounds, box.name)
            )
            quantifier = linear[id(box)]
            children = union_children.get(id(box))
            if children is not None and rounds > 1:
                # Delta-batch union: a union is additive in each branch,
                # so U(A ∪ ΔA, B ∪ ΔB) = U(A, B) ∪ U(ΔA, ΔB). Static
                # (non-member) branches contributed everything they ever
                # will in round 1; member branches add only their
                # previous round's delta — instead of re-emitting every
                # accumulated row each round.
                produced = []
                for child in children:
                    if id(child) in member_ids:
                        produced.extend(delta[id(child)])
            elif quantifier is not None and rounds > 1:
                # Semi-naive: join against the previous round's delta only.
                member = quantifier.input_box
                full_rows = evaluator._materialized[id(member)]
                evaluator._materialized[id(member)] = delta[id(member)]
                clear_member_indexes()
                try:
                    produced = evaluator.evaluate_box(box, {})
                finally:
                    evaluator._materialized[id(member)] = full_rows
                    clear_member_indexes()
            else:
                produced = evaluator.evaluate_box(box, {})
            # A box still carrying DISTINCT enforcement collapses its own
            # duplicates every round: the enforcement *is* its dedup
            # operator, and its contract holds regardless of consumer.
            # The duplicate-freeness proof relaxes exactly the boxes
            # where this pass is provably redundant — that removal is
            # what the distinct_drop benchmark measures.
            if box.distinct == DistinctMode.ENFORCE:
                produced = _dedupe(produced)
            if proven[id(box)] and additive[id(box)]:
                # Disjoint by proof: the box's total output carries a key
                # and its delta-driven rounds partition that output, so
                # every produced row is new — no dedup, no known-set
                # membership test, no bookkeeping.
                fresh = produced
            else:
                # Delta-batch dedup: collapse the round's duplicates in
                # one pass (dict preserves first-seen order; skipped when
                # the rows are already unique), then diff against the
                # accumulated rows with bulk set operations instead of a
                # per-row membership/append loop.
                known = seen[id(box)]
                if box.distinct == DistinctMode.ENFORCE or proven[id(box)]:
                    fresh = [row for row in produced if row not in known]
                else:
                    fresh = [
                        row
                        for row in dict.fromkeys(produced)
                        if row not in known
                    ]
                known.update(fresh)
            if fresh:
                new_delta[id(box)] = fresh
                changed = True
        # Jacobi-style end-of-round application: deltas land in the
        # materialized tables only after every member has evaluated, so
        # each round reads exactly the previous round's state. That is
        # what keeps the per-round contributions of additive boxes
        # disjoint — the invariant the proof-driven skip above relies on.
        for box in component:
            fresh = new_delta[id(box)]
            if fresh:
                evaluator._materialized[id(box)].extend(fresh)
        delta = new_delta
        if changed:
            clear_member_indexes()
    evaluator.stats.rows_produced += sum(
        len(evaluator._materialized[id(box)]) for box in component
    )
    return rounds
