"""Fixpoint evaluation of recursive strongly connected components.

The magic-sets transformation can turn a nonrecursive query into a
recursive one (one of the paper's motivations for why relational systems
resisted it), and users can write recursive views directly; either way the
query graph contains a cycle and the boxes in that strongly connected
component are evaluated together by fixpoint iteration.

Semantics are those of stratified Datalog: set semantics within a recursive
component (duplicates would make the fixpoint diverge), and negation or
aggregation *through* the cycle is rejected as non-stratified.

Evaluation is **semi-naive** where possible: a select box that references
exactly one component member directly (a *linear* rule — by far the common
case, and the only shape magic itself generates) is re-evaluated per round
against that member's *delta* (the rows discovered in the previous round)
instead of its full table. Non-linear boxes fall back to full re-evaluation
— still correct, just more work.
"""

from __future__ import annotations

from repro.errors import QgmError
from repro.qgm.model import BoxKind, QuantifierType

# Retained name for backward compatibility; the governor owns the default.
_MAX_ROUNDS = 100000


def _check_stratified(component):
    member_ids = {id(box) for box in component}
    for box in component:
        for quantifier in box.quantifiers:
            through_cycle = id(quantifier.input_box) in member_ids
            if not through_cycle:
                continue
            if quantifier.qtype == QuantifierType.ANTI:
                raise QgmError(
                    "negation through recursion in box %r is not stratified"
                    % box.name
                )
            if box.kind == BoxKind.GROUPBY:
                raise QgmError(
                    "aggregation through recursion in box %r is not stratified"
                    % box.name
                )
            if box.kind == BoxKind.EXCEPT and quantifier is box.quantifiers[1]:
                raise QgmError(
                    "difference through recursion in box %r is not stratified"
                    % box.name
                )


def _linear_member_quantifier(box, member_ids):
    """If ``box`` is a select box referencing exactly one component member
    through exactly one foreach quantifier (and no member through E/S
    quantifiers), return that quantifier; else None."""
    if box.kind != BoxKind.SELECT:
        return None
    recursive = [
        q for q in box.quantifiers if id(q.input_box) in member_ids
    ]
    if len(recursive) != 1:
        return None
    quantifier = recursive[0]
    if quantifier.qtype != QuantifierType.FOREACH:
        return None
    return quantifier


def run_fixpoint(evaluator, component, governor=None):
    """Evaluate all boxes of a recursive component to a fixpoint.

    Fills ``evaluator._materialized`` for every member with deduplicated
    rows. Linear select boxes run semi-naive (delta-driven); everything
    else re-evaluates fully each round.

    Round and deadline budgets come from ``governor`` (or the evaluator's
    governor; a default governor enforces the historical 100000-round cap
    and raises :class:`~repro.errors.ResourceExhaustedError` naming the
    limit and the recursive component).
    """
    _check_stratified(component)

    if governor is None:
        governor = getattr(evaluator, "governor", None)
    if governor is None:
        from repro.resilience.governor import ResourceGovernor

        governor = ResourceGovernor()
    component_names = sorted(box.name for box in component)

    member_ids = {id(box) for box in component}
    seen = {id(box): set() for box in component}
    delta = {id(box): [] for box in component}
    for box in component:
        evaluator._materialized[id(box)] = []

    linear = {
        id(box): _linear_member_quantifier(box, member_ids) for box in component
    }

    def clear_member_indexes():
        evaluator._index_cache = {
            key: value
            for key, value in evaluator._index_cache.items()
            if key[0] not in member_ids
        }

    rounds = 0
    changed = True
    while changed:
        rounds += 1
        governor.check_fixpoint_rounds(rounds, component_names)
        changed = False
        new_delta = {id(box): [] for box in component}
        for box in component:
            # Cooperative checkpoint per member: a deadline expiring or a
            # cancel token set mid-round aborts before the next member's
            # (potentially expensive) delta join, so cancellation latency
            # is bounded by one box evaluation, not one full round.
            governor.checkpoint(
                "fixpoint round %d, box %r" % (rounds, box.name)
            )
            quantifier = linear[id(box)]
            if quantifier is not None and rounds > 1:
                # Semi-naive: join against the previous round's delta only.
                member = quantifier.input_box
                full_rows = evaluator._materialized[id(member)]
                evaluator._materialized[id(member)] = delta[id(member)]
                clear_member_indexes()
                try:
                    produced = evaluator.evaluate_box(box, {})
                finally:
                    evaluator._materialized[id(member)] = full_rows
                    clear_member_indexes()
            else:
                produced = evaluator.evaluate_box(box, {})
            current = evaluator._materialized[id(box)]
            known = seen[id(box)]
            for row in produced:
                if row not in known:
                    known.add(row)
                    current.append(row)
                    new_delta[id(box)].append(row)
                    changed = True
        delta = new_delta
        if changed:
            clear_member_indexes()
    evaluator.stats.rows_produced += sum(len(s) for s in seen.values())
    return rounds
