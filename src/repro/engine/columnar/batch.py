"""The columnar batch executor.

:class:`BatchEvaluator` subclasses the tuple-at-a-time
:class:`~repro.engine.evaluator.Evaluator` and replaces its two hottest
box kinds — SELECT (join pipelines) and GROUPBY — with column-batch
implementations:

* predicates and projections run through the vectorized compiler
  (:func:`~repro.engine.columnar.vector.compile_vector`), one closure
  call per *column* instead of one per row;
* foreach quantifiers are attached by batch hash-join build/probe (or a
  batched cross product) instead of the per-environment
  ``_attach_quantifier`` loop — no environment-dict copy per probe;
* group-by extracts key/argument columns once and feeds accumulator
  slices through ``add_many``.

Everything else — correlation detection, scalar subqueries, E/A filter
quantifiers, set operations, outer joins, fixpoint orchestration — is
inherited, so the two engines share one semantics definition wherever
rows are produced one at a time anyway. The tuple engine remains the
differential-testing oracle: both must produce identical row sets, and
the resilience layer falls back batch→tuple on any batch-executor error.

Cooperative cancellation keeps the tuple engine's contract — a governor
checkpoint at least every :data:`~repro.engine.evaluator.CHECKPOINT_INTERVAL`
probes — by checkpointing inside the probe loops (governed variant) and
charging batched work against the shared probe budget.
"""

from __future__ import annotations

from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, QuantifierType
from repro.engine.aggregates import accumulator_factory, make_accumulator
from repro.engine.evaluator import (
    CHECKPOINT_INTERVAL,
    Evaluator,
    _hashable_equality,
)
from repro.engine.expressions import evaluate
from repro.engine.columnar.columns import Batch
from repro.engine.columnar.vector import compile_vector


class BatchEvaluator(Evaluator):
    """Drop-in :class:`Evaluator` replacement with columnar execution."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._compiled_vectors = {}

    # -- compiled vectors --------------------------------------------------------

    def _vfn(self, expr):
        """The compiled vector closure for ``expr`` (cached by identity)."""
        fn = self._compiled_vectors.get(id(expr))
        if fn is None:
            fn = compile_vector(expr)
            self._compiled_vectors[id(expr)] = fn
        return fn

    def _filter_batch(self, batch, predicate):
        """Keep the positions where ``predicate`` is TRUE (not UNKNOWN)."""
        if batch.length == 0:
            # The tuple engine never evaluates predicates over an empty
            # env list; an early-out may also leave quantifiers unbound.
            return batch
        values = self._vfn(predicate)(batch)
        positions = [i for i, value in enumerate(values) if value is True]
        if len(positions) == batch.length:
            return batch
        return batch.take(positions)

    def _bulk_checkpoint(self, box, count):
        """Charge ``count`` units of batched work against the shared probe
        budget, checkpointing the governor at the same amortized
        granularity as the tuple engine's per-probe `_checkpoint`."""
        if self.governor is None or count <= 0:
            return
        self._probe_budget -= count
        while self._probe_budget <= 0:
            self._probe_budget += CHECKPOINT_INTERVAL
            self.governor.checkpoint("join processing in box %r" % box.name)

    def _scan_sources(self, child, rows, quantifier):
        """Zero-copy column accessors when ``rows`` is a base table's own
        row view — extraction then reads the stored column arrays."""
        if child.kind == BoxKind.BASE:
            table = self.database.table(child.table_name)
            if rows is table.rows:
                return {quantifier: table.column_data}
        return None

    # -- select boxes ------------------------------------------------------------

    def _evaluate_select(self, box, env):
        local = set(box.quantifiers)
        predicates = list(box.predicates)
        scalar_quantifiers = [
            q for q in box.quantifiers if q.qtype == QuantifierType.SCALAR
        ]
        filter_quantifiers = [
            q
            for q in box.quantifiers
            if q.qtype in (QuantifierType.EXISTENTIAL, QuantifierType.ANTI)
        ]

        def quantifiers_of(expression):
            return {
                ref.quantifier
                for ref in qe.column_refs(expression)
                if ref.quantifier in local
            }

        deferred = set()
        join_predicates = []
        non_foreach = set(scalar_quantifiers) | set(filter_quantifiers)
        for predicate in predicates:
            if quantifiers_of(predicate) & non_foreach:
                deferred.add(id(predicate))
            else:
                join_predicates.append(predicate)

        # One position, no slots: the batch analogue of ``[dict(env)]``.
        batch = Batch(1, constants=dict(env))
        bound = set()
        applied = set()
        for quantifier in self._join_order(box):
            batch = self._attach_batch(
                box, quantifier, batch, bound, join_predicates, applied
            )
            bound.add(quantifier)
            if batch.length == 0:
                break

        for predicate in join_predicates:
            if id(predicate) not in applied:
                batch = self._filter_batch(batch, predicate)
                applied.add(id(predicate))

        # Scalar subqueries stay row-at-a-time (one-row semantics and
        # NULL-on-no-match need per-binding checks); the result rows
        # become a new slot so deferred predicates vectorize over them.
        for quantifier in scalar_quantifiers:
            selectors = quantifier.selector_predicates
            rows = [
                self._scalar_row(quantifier, current, selectors)
                for current in batch.row_envs()
            ]
            batch.add_slot(quantifier, rows)

        for predicate in predicates:
            if id(predicate) in deferred and not (
                quantifiers_of(predicate) & set(filter_quantifiers)
            ):
                batch = self._filter_batch(batch, predicate)

        # Existential / anti filters: inherently per-binding subqueries.
        for quantifier in filter_quantifiers:
            attached = [
                p
                for p in predicates
                if id(p) in deferred and quantifier in quantifiers_of(p)
            ]
            envs = batch.row_envs()
            positions = [
                i
                for i, current in enumerate(envs)
                if self._passes_filter_quantifier(quantifier, attached, current)
            ]
            if len(positions) != batch.length:
                batch = batch.take(positions)

        self.stats.batches += 1
        self.stats.batch_rows += batch.length
        if batch.length == 0:
            return []
        columns = [self._vfn(column.expr)(batch) for column in box.columns]
        if not columns:
            return [()] * batch.length
        return list(zip(*columns))

    def _attach_batch(self, box, quantifier, batch, bound, join_predicates, applied):
        """Join one foreach quantifier into the batch (hash or cross)."""
        child = quantifier.input_box
        local = set(box.quantifiers)

        def refs_ok(expression, extra):
            for ref in qe.column_refs(expression):
                owner = ref.quantifier
                if owner in local and owner not in extra and owner not in bound:
                    return False
            return True

        applicable = [
            p
            for p in join_predicates
            if id(p) not in applied and refs_ok(p, {quantifier})
        ]

        hash_keys = []
        residual = []
        for predicate in applicable:
            pair = _hashable_equality(predicate, quantifier, local, bound)
            if pair is not None:
                hash_keys.append(pair)
            else:
                residual.append(predicate)

        child_correlated = bool(self._externals(child))
        use_index = hash_keys and not child_correlated

        if use_index:
            index = self._hash_index(
                child, quantifier, tuple(k[0] for k in hash_keys)
            )
            probe_columns = [self._vfn(k[1])(batch) for k in hash_keys]
            result = self._probe(box, batch, quantifier, index, probe_columns)
            for predicate in residual:
                result = self._filter_batch(result, predicate)
        elif child_correlated:
            positions = []
            new_rows = []
            governed = self.governor is not None
            for i, current in enumerate(batch.row_envs()):
                child_rows = self.rows_for(child, current)
                if governed:
                    self._bulk_checkpoint(box, len(child_rows))
                positions.extend([i] * len(child_rows))
                new_rows.extend(child_rows)
            self.stats.join_probes += len(new_rows)
            result = batch.expand(positions, quantifier, new_rows)
            for predicate in applicable:
                result = self._filter_batch(result, predicate)
        else:
            child_rows = self.rows_for(child, {})
            n = len(child_rows)
            self.stats.join_probes += batch.length * n
            self._bulk_checkpoint(box, batch.length * n)
            if batch.length == 1 and not batch.slots:
                # First quantifier: a straight scan, no replication.
                result = Batch(
                    n,
                    slots={quantifier: child_rows},
                    constants=batch.constants,
                    column_sources=self._scan_sources(child, child_rows, quantifier),
                )
            else:
                positions = [
                    i for i in range(batch.length) for _ in range(n)
                ]
                result = batch.expand(positions, quantifier, child_rows * batch.length)
            for predicate in applicable:
                result = self._filter_batch(result, predicate)

        for predicate in applicable:
            applied.add(id(predicate))
        self.stats.batches += 1
        self.stats.batch_rows += result.length
        return result

    def _probe(self, box, batch, quantifier, index, probe_columns):
        """Batch hash-join probe: look up every position's key, emit one
        output position per match. NULL keys never join."""
        positions = []
        new_rows = []
        probes = 0
        matches = 0
        get = index.get
        governed = self.governor is not None
        if len(probe_columns) == 1:
            column = probe_columns[0]
            for i, value in enumerate(column):
                if governed:
                    self._checkpoint(box)
                if value is None:
                    continue
                probes += 1
                rows = get((value,))
                if rows:
                    matches += len(rows)
                    positions.extend([i] * len(rows))
                    new_rows.extend(rows)
        else:
            for i, key in enumerate(zip(*probe_columns)):
                if governed:
                    self._checkpoint(box)
                if any(value is None for value in key):
                    continue
                probes += 1
                rows = get(key)
                if rows:
                    matches += len(rows)
                    positions.extend([i] * len(rows))
                    new_rows.extend(rows)
        self.stats.batch_probes += probes
        self.stats.batch_probe_matches += matches
        self.stats.join_probes += matches
        return batch.expand(positions, quantifier, new_rows)

    def _hash_index(self, child, quantifier, key_exprs):
        """As the base implementation, but transient index builds extract
        key columns vectorized instead of evaluating per row. Cache keys
        are unchanged, so fixpoint delta invalidation keeps working."""
        if child.kind == BoxKind.BASE and all(
            isinstance(k, qe.QColRef) for k in key_exprs
        ):
            table = self.database.table(child.table_name)
            return table.index_on(tuple(k.column for k in key_exprs))
        names = tuple(str(k) for k in key_exprs)
        cache_key = (id(child), names)
        index = self._index_cache.get(cache_key)
        if index is not None:
            return index
        rows = self.rows_for(child, {})
        build = Batch(
            len(rows),
            slots={quantifier: rows},
            column_sources=self._scan_sources(child, rows, quantifier),
        )
        key_columns = [self._vfn(k)(build) for k in key_exprs]
        index = {}
        if len(key_columns) == 1:
            for i, value in enumerate(key_columns[0]):
                if value is None:
                    continue
                index.setdefault((value,), []).append(rows[i])
        else:
            for i, key in enumerate(zip(*key_columns)):
                if any(value is None for value in key):
                    continue
                index.setdefault(key, []).append(rows[i])
        self._index_cache[cache_key] = index
        return index

    # -- groupby boxes -----------------------------------------------------------

    def _evaluate_groupby(self, box, env):
        quantifier = box.quantifiers[0]
        input_rows = self.rows_for(quantifier.input_box, env)

        aggregate_columns = [
            (index, column.expr)
            for index, column in enumerate(box.columns)
            if isinstance(column.expr, qe.QAggregate)
        ]

        if not input_rows:
            if box.group_keys:
                return []
            # Scalar aggregate over an empty input: one row.
            accumulators = [
                make_accumulator(agg.func, star=agg.arg is None, distinct=agg.distinct)
                for _, agg in aggregate_columns
            ]
            row = []
            agg_iter = iter(accumulators)
            for column in box.columns:
                if isinstance(column.expr, qe.QAggregate):
                    row.append(next(agg_iter).result())
                else:
                    row.append(None)
            return [tuple(row)]

        batch = Batch(
            len(input_rows),
            slots={quantifier: input_rows},
            constants=dict(env),
            column_sources=self._scan_sources(
                quantifier.input_box, input_rows, quantifier
            ),
        )
        self._bulk_checkpoint(box, len(input_rows))
        key_columns = [self._vfn(k)(batch) for k in box.group_keys]
        arg_columns = [
            None if agg.arg is None else self._vfn(agg.arg)(batch)
            for _, agg in aggregate_columns
        ]

        groups = {}
        order = []
        if key_columns:
            if len(key_columns) == 1:
                keys = key_columns[0]
            else:
                keys = zip(*key_columns)
            for i, key in enumerate(keys):
                positions = groups.get(key)
                if positions is None:
                    groups[key] = positions = []
                    order.append(key)
                positions.append(i)
        else:
            groups[()] = list(range(len(input_rows)))
            order.append(())

        self.stats.batches += 1
        self.stats.batch_rows += len(input_rows)

        # Per-group work is planned once: aggregates get a pre-resolved
        # accumulator builder, bare column references gather from their
        # already-extracted column, and only genuinely complex output
        # expressions (rare) fall back to a per-group representative env
        # — matching the tuple engine, which also evaluates non-aggregate
        # outputs against one representative row per group.
        factories = [
            accumulator_factory(
                agg.func, star=agg.arg is None, distinct=agg.distinct
            )
            for _, agg in aggregate_columns
        ]
        plans = []  # ("agg", slot) | ("col", column values) | ("expr", expr)
        agg_slot = 0
        for column in box.columns:
            expr = column.expr
            if isinstance(expr, qe.QAggregate):
                plans.append(("agg", agg_slot))
                agg_slot += 1
            elif isinstance(expr, qe.QColRef):
                plans.append(("col", self._vfn(expr)(batch)))
            else:
                plans.append(("expr", expr))

        rows = []
        total = len(input_rows)
        for key in order:
            positions = groups[key]
            rep = positions[0]
            results = []
            for factory, column in zip(factories, arg_columns):
                accumulator = factory()
                if column is None:
                    # COUNT(*): only the slice length matters.
                    accumulator.add_many(positions)
                elif len(positions) == total:
                    accumulator.add_many(column)
                else:
                    accumulator.add_many([column[p] for p in positions])
                results.append(accumulator.result())
            representative_env = None
            row = []
            for kind, payload in plans:
                if kind == "agg":
                    row.append(results[payload])
                elif kind == "col":
                    row.append(payload[rep])
                else:
                    if representative_env is None:
                        representative_env = dict(env)
                        representative_env[quantifier] = input_rows[rep]
                    row.append(evaluate(payload, representative_env))
            rows.append(tuple(row))
        return rows
