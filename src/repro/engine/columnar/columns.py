"""Column batches: the unit of work of the batch executor.

A :class:`Batch` is the columnar analogue of the tuple engine's list of
environment dicts. Where the tuple engine carries ``[{quantifier: row},
...]`` and copies every dict per join probe, a batch stores each bound
quantifier's rows **once per quantifier** (``slots``) plus a shared
``constants`` mapping for outer correlation bindings that are the same at
every position. Individual columns are extracted lazily and cached, so a
predicate touching two columns of a five-table join never materialises
the other columns at all.
"""

from __future__ import annotations

from repro.errors import ExecutionError


class Batch:
    """``length`` positions over bound quantifiers.

    ``slots`` maps each bound :class:`~repro.qgm.model.Quantifier` (they
    hash by identity) to a list of row tuples, one per position.
    ``constants`` maps outer quantifiers to a single row broadcast to all
    positions — the batch form of evaluating a correlated subtree under
    one outer binding. ``column_sources`` optionally maps a quantifier to
    a zero-copy column accessor (``fn(ordinal) -> list``); a full base
    table scan registers the table's own column arrays here so extraction
    is a dict lookup, not an O(n) gather.
    """

    __slots__ = ("length", "slots", "constants", "column_sources", "_columns", "_envs")

    def __init__(self, length, slots=None, constants=None, column_sources=None):
        self.length = length
        self.slots = slots if slots is not None else {}
        self.constants = constants if constants is not None else {}
        self.column_sources = column_sources if column_sources is not None else {}
        self._columns = {}
        self._envs = None

    def column(self, quantifier, ordinal):
        """The value list of ``quantifier``'s column ``ordinal`` (cached)."""
        key = (id(quantifier), ordinal)
        values = self._columns.get(key)
        if values is not None:
            return values
        source = self.column_sources.get(quantifier)
        if source is not None:
            values = source(ordinal)
        else:
            rows = self.slots.get(quantifier)
            if rows is not None:
                values = [row[ordinal] for row in rows]
            else:
                row = self.constants.get(quantifier)
                if row is None:
                    raise ExecutionError(
                        "unbound quantifier %r in batch" % quantifier.name
                    )
                values = [row[ordinal]] * self.length
        self._columns[key] = values
        return values

    def add_slot(self, quantifier, rows):
        """Bind a new quantifier at every position (len(rows) == length)."""
        self.slots[quantifier] = rows
        self._envs = None

    def row_envs(self):
        """Per-position environment dicts, for scalar fallbacks.

        Built once and cached; used by the batch executor wherever a
        construct is inherently row-at-a-time (CASE branch shortcutting,
        correlated children, E/A filter quantifiers, scalar subqueries).
        """
        envs = self._envs
        if envs is None:
            envs = [dict(self.constants) for _ in range(self.length)]
            for quantifier, rows in self.slots.items():
                for env, row in zip(envs, rows):
                    env[quantifier] = row
            self._envs = envs
        return envs

    def take(self, positions):
        """A new batch holding only ``positions`` (a filter/selection)."""
        slots = {
            quantifier: [rows[p] for p in positions]
            for quantifier, rows in self.slots.items()
        }
        return Batch(len(positions), slots=slots, constants=self.constants)

    def expand(self, positions, quantifier, new_rows):
        """A new batch joining ``quantifier`` in: position ``i`` of the
        result replicates source position ``positions[i]`` and binds
        ``new_rows[i]`` to ``quantifier`` (the output of a hash-join probe
        or nested-loop pairing)."""
        slots = {
            existing: [rows[p] for p in positions]
            for existing, rows in self.slots.items()
        }
        slots[quantifier] = new_rows
        return Batch(len(positions), slots=slots, constants=self.constants)


def scan_batch(quantifier, table):
    """A batch scanning a whole base table, serving columns zero-copy."""
    return Batch(
        len(table),
        slots={quantifier: table.rows},
        column_sources={quantifier: table.column_data},
    )
