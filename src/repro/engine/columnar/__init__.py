"""Columnar batch execution of QGM graphs.

See :mod:`repro.engine.columnar.batch` for the executor,
:mod:`repro.engine.columnar.columns` for the batch representation and
:mod:`repro.engine.columnar.vector` for the vectorized expression
compiler.
"""

from repro.engine.columnar.batch import BatchEvaluator
from repro.engine.columnar.columns import Batch, scan_batch
from repro.engine.columnar.vector import compile_vector

__all__ = ["Batch", "BatchEvaluator", "compile_vector", "scan_batch"]
