"""Vectorized compilation of QGM expressions.

:func:`compile_vector` turns an expression into ``fn(batch) -> list`` — a
closure producing one value per batch position, with SQL three-valued
logic (``None`` is UNKNOWN/NULL). It is the column-at-a-time counterpart
of :func:`repro.engine.expressions.compile_expr` and must agree with it
value-for-value: the differential suite runs both engines over the same
workloads and the batch executor's only licence is "same rows, faster".

The vectorized fast paths use the raw operator tables exported by
:mod:`repro.engine.expressions` inside list comprehensions guarded by
``None`` checks; a ``TypeError`` anywhere in a fast path re-runs the
column element-wise through the scalar helpers so mixed-type operands
raise the same :class:`~repro.errors.ExecutionError` the tuple engine
raises. CASE is inherently row-at-a-time (branches must not evaluate
eagerly — an untaken branch may divide by zero), so it drops to the
scalar closure over per-row environments.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.qgm import expr as qe
from repro.engine.expressions import (
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    _SCALAR_FUNCTIONS,
    arithmetic,
    compare,
    compile_expr,
    like_match,
    sql_not,
)


def compile_vector(expr):
    """Compile ``expr`` into ``fn(batch) -> list`` (one value/position)."""
    if isinstance(expr, qe.QParam):
        raise ExecutionError(
            "unbound parameter ?%d reached the evaluator; bind_parameters "
            "must run before execution" % (expr.index + 1),
            context={"parameter": expr.index},
        )
    if isinstance(expr, qe.QLiteral):
        value = expr.value
        return lambda batch: [value] * batch.length
    if isinstance(expr, qe.QColRef):
        quantifier = expr.quantifier
        ordinal = quantifier.input_box.column_ordinal(expr.column)
        return lambda batch: batch.column(quantifier, ordinal)
    if isinstance(expr, qe.QBinary):
        op = expr.op
        left = compile_vector(expr.left)
        right = compile_vector(expr.right)
        if op == "AND":

            def and_fn(batch):
                return [
                    False
                    if (a is False or b is False)
                    else (None if (a is None or b is None) else True)
                    for a, b in zip(left(batch), right(batch))
                ]

            return and_fn
        if op == "OR":

            def or_fn(batch):
                return [
                    True
                    if (a is True or b is True)
                    else (None if (a is None or b is None) else False)
                    for a, b in zip(left(batch), right(batch))
                ]

            return or_fn
        raw = COMPARISON_OPS.get(op)
        if raw is not None:

            def compare_fn(batch):
                lv = left(batch)
                rv = right(batch)
                try:
                    return [
                        None if (a is None or b is None) else raw(a, b)
                        for a, b in zip(lv, rv)
                    ]
                except TypeError:
                    # Mixed-type operands: redo element-wise so the scalar
                    # helper raises the tuple engine's ExecutionError.
                    return [compare(op, a, b) for a, b in zip(lv, rv)]

            return compare_fn
        raw = ARITHMETIC_OPS.get(op)
        if raw is not None:

            def arith_fn(batch):
                lv = left(batch)
                rv = right(batch)
                try:
                    return [
                        None if (a is None or b is None) else raw(a, b)
                        for a, b in zip(lv, rv)
                    ]
                except TypeError:
                    return [arithmetic(op, a, b) for a, b in zip(lv, rv)]

            return arith_fn
        # '/', '%', '||' carry per-value semantics (zero checks, exact
        # integer division, string coercion): always element-wise.
        return lambda batch: [
            arithmetic(op, a, b) for a, b in zip(left(batch), right(batch))
        ]
    if isinstance(expr, qe.QUnary):
        operand = compile_vector(expr.operand)
        if expr.op == "NOT":
            return lambda batch: [sql_not(v) for v in operand(batch)]
        if expr.op == "-":
            return lambda batch: [
                None if v is None else -v for v in operand(batch)
            ]
        raise ExecutionError("unknown unary operator %r" % expr.op)
    if isinstance(expr, qe.QIsNull):
        operand = compile_vector(expr.operand)
        if expr.negated:
            return lambda batch: [v is not None for v in operand(batch)]
        return lambda batch: [v is None for v in operand(batch)]
    if isinstance(expr, qe.QLike):
        operand = compile_vector(expr.operand)
        pattern = compile_vector(expr.pattern)
        negated = expr.negated

        def like_fn(batch):
            out = []
            for value, pat in zip(operand(batch), pattern(batch)):
                result = like_match(value, pat)
                if result is None:
                    out.append(None)
                else:
                    out.append(not result if negated else result)
            return out

        return like_fn
    if isinstance(expr, qe.QFunc):
        fn = _SCALAR_FUNCTIONS.get(expr.name.upper())
        if fn is None:
            raise ExecutionError("unknown scalar function %r" % expr.name)
        args = [compile_vector(a) for a in expr.args]
        if not args:
            return lambda batch: [fn() for _ in range(batch.length)]
        if len(args) == 1:
            arg = args[0]
            return lambda batch: [fn(v) for v in arg(batch)]

        def func_fn(batch):
            columns = [a(batch) for a in args]
            return [fn(*values) for values in zip(*columns)]

        return func_fn
    if isinstance(expr, qe.QCase):
        scalar = compile_expr(expr)
        return lambda batch: [scalar(env) for env in batch.row_envs()]
    if isinstance(expr, qe.QAggregate):
        raise ExecutionError(
            "aggregate %s evaluated outside a groupby box" % expr.func
        )
    raise ExecutionError("cannot compile expression %r" % type(expr).__name__)
