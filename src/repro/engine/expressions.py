"""Runtime evaluation of QGM expressions with SQL three-valued logic.

An *environment* maps :class:`~repro.qgm.model.Quantifier` objects to the
current row (a tuple laid out per the quantifier's input box columns).
Boolean expressions evaluate to ``True``, ``False`` or ``None`` (UNKNOWN);
predicates accept a row only when the result is ``True``.
"""

from __future__ import annotations

import operator
import re

from repro.errors import ExecutionError
from repro.qgm import expr as qe

_LIKE_CACHE = {}

#: Raw (not NULL-aware) binary operator callables, shared with the batch
#: executor's vector compiler. The vectorized paths apply these inside
#: comprehensions with explicit None guards; ``/``, ``%`` and ``||`` stay
#: out because they carry extra semantics (zero checks, exact integer
#: division, string coercion) and go through :func:`arithmetic` per value.
COMPARISON_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

ARITHMETIC_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}


def like_match(value, pattern):
    """SQL LIKE with ``%`` and ``_`` wildcards; NULL-propagating."""
    if value is None or pattern is None:
        return None
    regex = _LIKE_CACHE.get(pattern)
    if regex is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        regex = re.compile("^%s$" % "".join(parts), re.DOTALL)
        _LIKE_CACHE[pattern] = regex
    return regex.match(value) is not None


def sql_and(left, right):
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left, right):
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value):
    if value is None:
        return None
    return not value


def compare(op, left, right):
    """Three-valued comparison; any NULL operand yields UNKNOWN."""
    if left is None or right is None:
        return None
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        raise ExecutionError(
            "cannot compare %r and %r with %s" % (left, right, op)
        )
    raise ExecutionError("unknown comparison operator %r" % op)


def arithmetic(op, left, right):
    """NULL-propagating arithmetic and string concatenation."""
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                return left // right
            return left / right
        if op == "%":
            if right == 0:
                raise ExecutionError("division by zero")
            return left % right
        if op == "||":
            return str(left) + str(right)
    except TypeError:
        raise ExecutionError("invalid operands for %s: %r, %r" % (op, left, right))
    raise ExecutionError("unknown operator %r" % op)


_SCALAR_FUNCTIONS = {}


def scalar_function(name):
    """Decorator registering a scalar SQL function (extensibility hook)."""

    def register(fn):
        _SCALAR_FUNCTIONS[name.upper()] = fn
        return fn

    return register


@scalar_function("UPPER")
def _fn_upper(value):
    return None if value is None else str(value).upper()


@scalar_function("LOWER")
def _fn_lower(value):
    return None if value is None else str(value).lower()


@scalar_function("LENGTH")
def _fn_length(value):
    return None if value is None else len(str(value))


@scalar_function("ABS")
def _fn_abs(value):
    return None if value is None else abs(value)


@scalar_function("MOD")
def _fn_mod(left, right):
    if left is None or right is None:
        return None
    if right == 0:
        raise ExecutionError("MOD by zero")
    return left % right


@scalar_function("COALESCE")
def _fn_coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


@scalar_function("SUBSTR")
def _fn_substr(value, start, length=None):
    if value is None or start is None:
        return None
    text = str(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def evaluate(expr, env):
    """Evaluate a QGM expression in environment ``env``.

    ``env`` maps quantifiers to rows. A reference to a quantifier missing
    from the environment is an internal error (the evaluator must always
    bind correlated quantifiers before descending).
    """
    if isinstance(expr, qe.QParam):
        raise ExecutionError(
            "unbound parameter ?%d reached the evaluator; bind_parameters "
            "must run before execution" % (expr.index + 1),
            context={"parameter": expr.index},
        )
    if isinstance(expr, qe.QLiteral):
        return expr.value
    if isinstance(expr, qe.QColRef):
        row = env.get(expr.quantifier)
        if row is None:
            raise ExecutionError(
                "unbound quantifier %r while evaluating %s"
                % (expr.quantifier.name, expr)
            )
        ordinal = expr.quantifier.input_box.column_ordinal(expr.column)
        return row[ordinal]
    if isinstance(expr, qe.QBinary):
        if expr.op == "AND":
            return sql_and(evaluate(expr.left, env), evaluate(expr.right, env))
        if expr.op == "OR":
            return sql_or(evaluate(expr.left, env), evaluate(expr.right, env))
        left = evaluate(expr.left, env)
        right = evaluate(expr.right, env)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return compare(expr.op, left, right)
        return arithmetic(expr.op, left, right)
    if isinstance(expr, qe.QUnary):
        value = evaluate(expr.operand, env)
        if expr.op == "NOT":
            return sql_not(value)
        if expr.op == "-":
            return None if value is None else -value
        raise ExecutionError("unknown unary operator %r" % expr.op)
    if isinstance(expr, qe.QIsNull):
        value = evaluate(expr.operand, env)
        result = value is None
        return not result if expr.negated else result
    if isinstance(expr, qe.QLike):
        result = like_match(evaluate(expr.operand, env), evaluate(expr.pattern, env))
        if result is None:
            return None
        return not result if expr.negated else result
    if isinstance(expr, qe.QFunc):
        fn = _SCALAR_FUNCTIONS.get(expr.name.upper())
        if fn is None:
            raise ExecutionError("unknown scalar function %r" % expr.name)
        return fn(*[evaluate(arg, env) for arg in expr.args])
    if isinstance(expr, qe.QCase):
        for cond, value in expr.branches:
            if evaluate(cond, env) is True:
                return evaluate(value, env)
        if expr.default is not None:
            return evaluate(expr.default, env)
        return None
    if isinstance(expr, qe.QAggregate):
        raise ExecutionError(
            "aggregate %s evaluated outside a groupby box" % expr.func
        )
    raise ExecutionError("cannot evaluate expression %r" % type(expr).__name__)


def predicate_holds(expr, env):
    """True only when the predicate evaluates to TRUE (not UNKNOWN)."""
    return evaluate(expr, env) is True


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def compile_expr(expr):
    """Compile a QGM expression into a closure ``fn(env) -> value``.

    Semantically identical to :func:`evaluate` but resolves dispatch,
    column ordinals and operator lookups once, at compile time — the
    evaluator uses this on its hot paths. Expressions must not be mutated
    after compilation (rewrite rules rebuild expressions rather than
    mutating, so anything reachable during execution is stable).
    """
    if isinstance(expr, qe.QParam):
        raise ExecutionError(
            "unbound parameter ?%d reached the evaluator; bind_parameters "
            "must run before execution" % (expr.index + 1),
            context={"parameter": expr.index},
        )
    if isinstance(expr, qe.QLiteral):
        value = expr.value
        return lambda env: value
    if isinstance(expr, qe.QColRef):
        quantifier = expr.quantifier
        ordinal = quantifier.input_box.column_ordinal(expr.column)
        name = expr.quantifier.name

        def column_fn(env, _q=quantifier, _o=ordinal, _n=name):
            row = env.get(_q)
            if row is None:
                raise ExecutionError(
                    "unbound quantifier %r while evaluating %s.%s"
                    % (_n, _n, expr.column)
                )
            return row[_o]

        return column_fn
    if isinstance(expr, qe.QBinary):
        op = expr.op
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        if op == "AND":
            return lambda env: sql_and(left(env), right(env))
        if op == "OR":
            return lambda env: sql_or(left(env), right(env))
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return lambda env: compare(op, left(env), right(env))
        return lambda env: arithmetic(op, left(env), right(env))
    if isinstance(expr, qe.QUnary):
        operand = compile_expr(expr.operand)
        if expr.op == "NOT":
            return lambda env: sql_not(operand(env))
        if expr.op == "-":

            def negate(env):
                value = operand(env)
                return None if value is None else -value

            return negate
        raise ExecutionError("unknown unary operator %r" % expr.op)
    if isinstance(expr, qe.QIsNull):
        operand = compile_expr(expr.operand)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None
    if isinstance(expr, qe.QLike):
        operand = compile_expr(expr.operand)
        pattern = compile_expr(expr.pattern)
        negated = expr.negated

        def like_fn(env):
            result = like_match(operand(env), pattern(env))
            if result is None:
                return None
            return not result if negated else result

        return like_fn
    if isinstance(expr, qe.QFunc):
        fn = _SCALAR_FUNCTIONS.get(expr.name.upper())
        if fn is None:
            raise ExecutionError("unknown scalar function %r" % expr.name)
        args = [compile_expr(a) for a in expr.args]
        return lambda env: fn(*[a(env) for a in args])
    if isinstance(expr, qe.QCase):
        branches = [
            (compile_expr(cond), compile_expr(value))
            for cond, value in expr.branches
        ]
        default = compile_expr(expr.default) if expr.default is not None else None

        def case_fn(env):
            for cond, value in branches:
                if cond(env) is True:
                    return value(env)
            return default(env) if default is not None else None

        return case_fn
    if isinstance(expr, qe.QAggregate):
        raise ExecutionError(
            "aggregate %s evaluated outside a groupby box" % expr.func
        )
    raise ExecutionError("cannot compile expression %r" % type(expr).__name__)


def compile_predicate(expr):
    """Compile a predicate into ``fn(env) -> bool`` (TRUE-only)."""
    fn = compile_expr(expr)
    return lambda env: fn(env) is True
