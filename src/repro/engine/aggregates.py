"""Aggregate function accumulators with SQL semantics.

NULL inputs are ignored by every aggregate; ``COUNT(*)`` counts rows. An
empty group yields NULL for SUM/AVG/MIN/MAX and 0 for COUNT. DISTINCT
variants deduplicate their non-NULL inputs first.
"""

from __future__ import annotations

from repro.errors import ExecutionError


class _Accumulator:
    def add(self, value):
        raise NotImplementedError

    def add_many(self, values):
        """Bulk feed: semantically ``for v in values: self.add(v)``.

        Subclasses override with set-oriented implementations; the batch
        executor's columnar group-by feeds whole column slices through
        this instead of calling ``add`` per row.
        """
        for value in values:
            self.add(value)

    def result(self):
        raise NotImplementedError


class CountStar(_Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value):
        self.count += 1

    def add_many(self, values):
        self.count += len(values)

    def result(self):
        return self.count


class Count(_Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value):
        if value is not None:
            self.count += 1

    def add_many(self, values):
        self.count += len(values) - values.count(None)

    def result(self):
        return self.count


class Sum(_Accumulator):
    def __init__(self):
        self.total = None

    def add(self, value):
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def add_many(self, values):
        # Sequential adds (not sum()) so float results stay bit-identical
        # to the per-row path whatever the accumulation order.
        total = self.total
        for value in values:
            if value is not None:
                total = value if total is None else total + value
        self.total = total

    def result(self):
        return self.total


class Avg(_Accumulator):
    def __init__(self):
        self.total = 0
        self.count = 0

    def add(self, value):
        if value is None:
            return
        self.total += value
        self.count += 1

    def add_many(self, values):
        total = self.total
        count = self.count
        for value in values:
            if value is not None:
                total += value
                count += 1
        self.total = total
        self.count = count

    def result(self):
        if self.count == 0:
            return None
        return self.total / self.count


class Min(_Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value):
        if value is None:
            return
        if self.value is None or value < self.value:
            self.value = value

    def add_many(self, values):
        present = [value for value in values if value is not None]
        if not present:
            return
        smallest = min(present)
        if self.value is None or smallest < self.value:
            self.value = smallest

    def result(self):
        return self.value


class Max(_Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value):
        if value is None:
            return
        if self.value is None or value > self.value:
            self.value = value

    def add_many(self, values):
        present = [value for value in values if value is not None]
        if not present:
            return
        largest = max(present)
        if self.value is None or largest > self.value:
            self.value = largest

    def result(self):
        return self.value


class Distinct(_Accumulator):
    """Wraps another accumulator, feeding it each distinct non-NULL value."""

    def __init__(self, inner):
        self.inner = inner
        self.seen = set()

    def add(self, value):
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self):
        return self.inner.result()


class Variance(_Accumulator):
    """Population variance (Welford's online algorithm)."""

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value):
        if value is None:
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def result(self):
        if self.count == 0:
            return None
        return self.m2 / self.count


class Stddev(Variance):
    def result(self):
        variance = super().result()
        return None if variance is None else variance ** 0.5


_FACTORIES = {
    "COUNT": Count,
    "SUM": Sum,
    "AVG": Avg,
    "MIN": Min,
    "MAX": Max,
    "VARIANCE": Variance,
    "STDDEV": Stddev,
}


def register_aggregate(name, factory):
    """Register a custom aggregate (extensibility hook, §5 style).

    ``factory`` is a zero-argument callable returning an accumulator with
    ``add(value)`` / ``result()``. The name also becomes recognisable to
    the SQL builder (it may then appear in select lists and HAVING).
    """
    from repro.sql import ast

    upper = name.upper()
    _FACTORIES[upper] = factory
    ast.AGGREGATE_FUNCTIONS.add(upper)
    return factory


def accumulator_factory(func, star=False, distinct=False):
    """Resolve ``func`` once; return a zero-arg accumulator builder.

    The batch executor's group-by calls the builder once per group, so
    name resolution must not sit inside the per-group loop.
    """
    name = func.upper()
    if name == "COUNT" and star:
        if distinct:
            raise ExecutionError("COUNT(DISTINCT *) is not valid SQL")
        return CountStar
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ExecutionError("unknown aggregate function %r" % func)
    if distinct:
        return lambda: Distinct(factory())
    return factory


def make_accumulator(func, star=False, distinct=False):
    """Build an accumulator for aggregate ``func``.

    ``star`` selects COUNT(*); ``distinct`` wraps with deduplication.
    """
    return accumulator_factory(func, star=star, distinct=distinct)()
