"""Aggregate function accumulators with SQL semantics.

NULL inputs are ignored by every aggregate; ``COUNT(*)`` counts rows. An
empty group yields NULL for SUM/AVG/MIN/MAX and 0 for COUNT. DISTINCT
variants deduplicate their non-NULL inputs first.
"""

from __future__ import annotations

from repro.errors import ExecutionError


class _Accumulator:
    def add(self, value):
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class CountStar(_Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value):
        self.count += 1

    def result(self):
        return self.count


class Count(_Accumulator):
    def __init__(self):
        self.count = 0

    def add(self, value):
        if value is not None:
            self.count += 1

    def result(self):
        return self.count


class Sum(_Accumulator):
    def __init__(self):
        self.total = None

    def add(self, value):
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self):
        return self.total


class Avg(_Accumulator):
    def __init__(self):
        self.total = 0
        self.count = 0

    def add(self, value):
        if value is None:
            return
        self.total += value
        self.count += 1

    def result(self):
        if self.count == 0:
            return None
        return self.total / self.count


class Min(_Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value):
        if value is None:
            return
        if self.value is None or value < self.value:
            self.value = value

    def result(self):
        return self.value


class Max(_Accumulator):
    def __init__(self):
        self.value = None

    def add(self, value):
        if value is None:
            return
        if self.value is None or value > self.value:
            self.value = value

    def result(self):
        return self.value


class Distinct(_Accumulator):
    """Wraps another accumulator, feeding it each distinct non-NULL value."""

    def __init__(self, inner):
        self.inner = inner
        self.seen = set()

    def add(self, value):
        if value is None or value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self):
        return self.inner.result()


class Variance(_Accumulator):
    """Population variance (Welford's online algorithm)."""

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value):
        if value is None:
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def result(self):
        if self.count == 0:
            return None
        return self.m2 / self.count


class Stddev(Variance):
    def result(self):
        variance = super().result()
        return None if variance is None else variance ** 0.5


_FACTORIES = {
    "COUNT": Count,
    "SUM": Sum,
    "AVG": Avg,
    "MIN": Min,
    "MAX": Max,
    "VARIANCE": Variance,
    "STDDEV": Stddev,
}


def register_aggregate(name, factory):
    """Register a custom aggregate (extensibility hook, §5 style).

    ``factory`` is a zero-argument callable returning an accumulator with
    ``add(value)`` / ``result()``. The name also becomes recognisable to
    the SQL builder (it may then appear in select lists and HAVING).
    """
    from repro.sql import ast

    upper = name.upper()
    _FACTORIES[upper] = factory
    ast.AGGREGATE_FUNCTIONS.add(upper)
    return factory


def make_accumulator(func, star=False, distinct=False):
    """Build an accumulator for aggregate ``func``.

    ``star`` selects COUNT(*); ``distinct`` wraps with deduplication.
    """
    name = func.upper()
    if name == "COUNT" and star:
        if distinct:
            raise ExecutionError("COUNT(DISTINCT *) is not valid SQL")
        return CountStar()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ExecutionError("unknown aggregate function %r" % func)
    accumulator = factory()
    if distinct:
        return Distinct(accumulator)
    return accumulator
