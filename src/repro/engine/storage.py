"""In-memory storage: columnar tables plus the database facade.

Tables are stored **column-major**: one Python list per column, with NULL
as ``None``. A row-major view (list of plain tuples laid out per the
table's schema) is materialised lazily and cached, so tuple-at-a-time
consumers — the classic evaluators, statistics, the chase — keep working
unchanged while the batch executor reads whole columns without
per-row reconstruction. The :class:`Database` owns a
:class:`~repro.catalog.Catalog` and the column storage, and is the object
users hand to the session API.
"""

from __future__ import annotations

from repro.catalog import Catalog, compute_statistics
from repro.catalog.schema import ColumnDef, ForeignKey, TableSchema
from repro.errors import CatalogError, ExecutionError


class Table:
    """A stored base table: schema + columnar data + lazy hash indexes.

    Data lives in ``_columns`` (one list per schema column); ``rows`` is a
    cached row-tuple view rebuilt on demand after mutations. Because the
    view is replaced (never mutated in place), an evaluator holding the
    ``rows`` list of a table sees a stable snapshot even if a mutation
    lands mid-query.

    ``version`` is a monotonic data-version counter, bumped by every
    mutation through :meth:`invalidate_indexes`. Plan artifacts computed
    against the table (cached plans optimized with its statistics) record
    the version they saw, so staleness is *detectable* — a stale plan is
    still correct (plans never embed row data), just possibly suboptimal,
    and the serving layer decides whether to re-plan.
    """

    def __init__(self, schema, rows=None):
        self.schema = schema
        self._ncols = len(schema.columns)
        self._columns = [[] for _ in range(self._ncols)]
        self._nrows = 0
        self._rows = []
        self.version = 0
        self._indexes = {}
        if rows:
            self._append_rows(self._converted_rows(rows))

    # -- row/column representations ------------------------------------------

    def _converted_rows(self, rows):
        """Convert ``rows`` to tuples, checking arity in the same pass.

        The whole input is validated before anything is stored, so a
        bad-arity row anywhere in the input leaves the table unmodified.
        """
        ncols = self._ncols
        converted = []
        for row in rows:
            row = tuple(row)
            if len(row) != ncols:
                raise ExecutionError(
                    "row arity %d does not match table %r (%d columns)"
                    % (len(row), self.schema.name, ncols)
                )
            converted.append(row)
        return converted

    def _append_rows(self, converted):
        """Append pre-validated row tuples to the column arrays."""
        if not converted:
            return
        for ordinal, column in enumerate(self._columns):
            column.extend(row[ordinal] for row in converted)
        self._nrows += len(converted)
        self._rows = None  # row view rebuilt on next access

    @property
    def rows(self):
        """Row-major view: a list of plain tuples (cached)."""
        rows = self._rows
        if rows is None:
            rows = list(zip(*self._columns)) if self._nrows else []
            self._rows = rows
        return rows

    @rows.setter
    def rows(self, new_rows):
        """Replace the table's contents (DELETE/UPDATE rebuild via this).

        Callers still must bump the version through
        :meth:`invalidate_indexes`, exactly as with the old list storage.
        """
        converted = self._converted_rows(new_rows)
        if converted:
            self._columns = [list(column) for column in zip(*converted)]
        else:
            self._columns = [[] for _ in range(self._ncols)]
        self._nrows = len(converted)
        self._rows = converted

    def column_data(self, column):
        """The stored value list of one column (by name or ordinal).

        This is the batch executor's scan path: the returned list is the
        live column array — callers must treat it as read-only.
        """
        if isinstance(column, int):
            ordinal = column
        else:
            ordinal = self.schema.column_ordinal(column)
        return self._columns[ordinal]

    def column_blocks(self):
        """The live column arrays (one list per schema column), for bulk
        serialization — the worker-pool publisher pickles these into
        shared memory. Read-only by contract, like :meth:`column_data`."""
        return self._columns

    def load_columns(self, columns, version):
        """Atomically replace the table's contents with pre-built column
        blocks at a given data version — the worker-side half of the
        shared-memory sync protocol. The blocks must all have equal
        length and match the schema's arity; the version is adopted
        as-is so the worker's copy reports the same
        :attr:`version` the publisher recorded."""
        if len(columns) != self._ncols:
            raise ExecutionError(
                "column-block arity %d does not match table %r (%d columns)"
                % (len(columns), self.schema.name, self._ncols)
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise ExecutionError(
                "ragged column blocks for table %r: lengths %s"
                % (self.schema.name, sorted(lengths))
            )
        self._columns = [list(column) for column in columns]
        self._nrows = lengths.pop() if lengths else 0
        self._rows = None
        self._indexes.clear()
        self.version = version

    # -- mutation ---------------------------------------------------------------

    def insert(self, row):
        row = tuple(row)
        if len(row) != self._ncols:
            raise ExecutionError(
                "row arity %d does not match table %r (%d columns)"
                % (len(row), self.schema.name, self._ncols)
            )
        for ordinal, column in enumerate(self._columns):
            column.append(row[ordinal])
        self._nrows += 1
        self._rows = None
        self.invalidate_indexes()

    def insert_many(self, rows):
        converted = self._converted_rows(rows)
        if not converted:
            return
        self._append_rows(converted)
        # One statement, one version bump — per-row bumps would make the
        # version useless as a "how much changed" signal.
        self.invalidate_indexes()

    def invalidate_indexes(self):
        """Drop the lazily built hash indexes and bump the monotonic data
        version; the next ``index_on`` call rebuilds them. Callers that
        assign ``rows`` directly (DELETE and UPDATE do) must call this
        instead of touching ``_indexes``."""
        self.version += 1
        self._indexes.clear()

    def index_on(self, columns):
        """A hash index ``key -> [row, ...]`` on one column (keys are bare
        values) or a tuple of columns (keys are value tuples). Built lazily
        and kept until the next insert. This models the persistent index
        access paths both the correlated strategy and set-oriented magic
        plans rely on."""
        if isinstance(columns, str):
            ordinal = self.schema.column_ordinal(columns)
            index = self._indexes.get(ordinal)
            if index is None:
                index = {}
                for row in self.rows:
                    index.setdefault(row[ordinal], []).append(row)
                self._indexes[ordinal] = index
            return index
        ordinals = tuple(self.schema.column_ordinal(c) for c in columns)
        index = self._indexes.get(ordinals)
        if index is None:
            index = {}
            for row in self.rows:
                index.setdefault(tuple(row[o] for o in ordinals), []).append(row)
            self._indexes[ordinals] = index
        return index

    def __len__(self):
        return self._nrows


class Database:
    """Catalog + storage + statistics. The engine's root object."""

    def __init__(self, catalog=None):
        self.catalog = catalog or Catalog()
        self._tables = {}

    def schema_version(self):
        """The catalog's monotonic DDL version (see
        :attr:`~repro.catalog.Catalog.version`). Cached plans are keyed on
        it: any CREATE TABLE/VIEW or DROP VIEW makes every previously
        cached plan unreachable rather than silently wrong."""
        return self.catalog.version

    def table_versions(self, names=None):
        """``{table name (lower) -> data version}`` for ``names`` (all
        stored tables when omitted); the plan cache records these to make
        statistics staleness detectable.

        An unknown name raises :class:`~repro.errors.CatalogError`, the
        same contract as :meth:`table` — silently skipping it would make a
        staleness probe over a mistyped name report "nothing stale".
        """
        if names is None:
            return {
                name: table.version for name, table in self._tables.items()
            }
        out = {}
        for name in names:
            table = self._tables.get(name.lower())
            if table is None:
                raise CatalogError("no stored table %r" % name)
            out[name.lower()] = table.version
        return out

    def create_table(self, name, columns, primary_key=None, unique_keys=None,
                     rows=None, foreign_keys=None):
        """Create a base table.

        ``columns`` is a list of column names or :class:`ColumnDef`.
        ``foreign_keys`` is a list of :class:`~repro.catalog.ForeignKey`
        (or ``(columns, ref_table, ref_columns)`` tuples); a ``ref_columns``
        of None resolves to the referenced table's primary key.
        """
        defs = [
            column if isinstance(column, ColumnDef) else ColumnDef(name=column)
            for column in columns
        ]
        resolved = []
        for fk in foreign_keys or []:
            if not isinstance(fk, ForeignKey):
                fk_columns, ref_table, ref_columns = fk
                if ref_columns is None:
                    parent = self.catalog.table(ref_table)
                    if parent.primary_key is None:
                        raise CatalogError(
                            "foreign key on %r references %r without a "
                            "column list, but %r has no primary key"
                            % (name, ref_table, ref_table)
                        )
                    ref_columns = parent.primary_key
                fk = ForeignKey(
                    columns=tuple(fk_columns),
                    ref_table=ref_table,
                    ref_columns=tuple(ref_columns),
                )
            resolved.append(fk)
        schema = TableSchema(
            name=name,
            columns=defs,
            primary_key=tuple(primary_key) if primary_key else None,
            unique_keys=[tuple(key) for key in (unique_keys or [])],
            foreign_keys=resolved,
        )
        self.catalog.add_table(schema)
        table = Table(schema, rows=rows)
        self._tables[name.lower()] = table
        if rows:
            self.analyze(name)
        return table

    def table(self, name):
        table = self._tables.get(name.lower())
        if table is None:
            raise CatalogError("no stored table %r" % name)
        return table

    def stored_tables(self):
        """``{name (lower) -> Table}`` for every stored table. The worker
        pool's publisher iterates this to find tables whose data version
        moved; callers must not mutate the mapping."""
        return self._tables

    def register_table(self, schema):
        """Attach an empty :class:`Table` for a schema that is *already*
        in the catalog — the worker-side path for tables created by the
        parent after fork (the schema arrives via the catalog sync, the
        rows via a column-block segment). Replaces any existing storage
        for the name."""
        table = Table(schema)
        self._tables[schema.name.lower()] = table
        return table

    def insert(self, name, rows):
        self.table(name).insert_many(rows)

    def analyze(self, name=None):
        """Recompute optimizer statistics (ANALYZE). All tables if no name."""
        names = [name] if name else [schema.name for schema in self.catalog.tables()]
        for table_name in names:
            table = self.table(table_name)
            self.catalog.set_statistics(
                table_name, compute_statistics(table.schema, table.rows)
            )

    def create_view(self, sql_text):
        """Parse and register a ``CREATE VIEW`` statement."""
        from repro.sql import parse_statement
        from repro.sql.ast import CreateView

        statement = parse_statement(sql_text)
        if not isinstance(statement, CreateView):
            raise CatalogError("create_view expects a CREATE VIEW statement")
        return self.catalog.add_view(statement)
