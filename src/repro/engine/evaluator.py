"""Bottom-up, set-oriented evaluation of QGM graphs.

Every uncorrelated box is materialised at most once (common subexpressions
are shared). Correlated boxes — boxes whose subtree references quantifiers
of enclosing boxes — are evaluated per outer binding (with optional
memoisation). Recursive strongly connected components run by fixpoint
iteration (:mod:`repro.engine.recursion`).

Join processing inside a select box is pipelined in the supplied join order
(the plan optimizer's choice): each quantifier is attached by hash join
when an applicable equality predicate exists, else by nested loop, and
every predicate is applied at the earliest point where all of its inputs
are bound — which is exactly why the join order matters to EMST.
"""

from __future__ import annotations

from repro.errors import ExecutionError, QgmError
from repro.qgm import expr as qe
from repro.qgm.model import BoxKind, DistinctMode, QuantifierType
from repro.qgm.stratum import reduced_dependency_graph
from repro.engine.aggregates import make_accumulator
from repro.engine.expressions import (
    compile_expr,
    compile_predicate,
    evaluate,
    predicate_holds,
)

#: Join-probe granularity of cooperative cancellation/deadline checks: the
#: governor's clock read is cheap but not free, so the hot loops consult it
#: once per this many probes. Small enough that a deadline or disconnect is
#: observed within milliseconds even inside one monster join.
CHECKPOINT_INTERVAL = 2048


class Result:
    """Final query output: column names plus rows (list of tuples)."""

    def __init__(self, columns, rows):
        self.columns = columns
        self.rows = rows

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def as_dicts(self):
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __repr__(self):
        return "<Result %d rows: %s>" % (len(self.rows), ", ".join(self.columns))


class EvaluatorStats:
    """Work counters; the benchmarks report these alongside elapsed time.

    The ``batch_*`` counters are filled only by the columnar
    :class:`~repro.engine.columnar.BatchEvaluator`; they appear in
    :meth:`as_dict` (and hence in explain output) only when batch work
    actually happened, so tuple-engine stats keep their historical shape.
    """

    def __init__(self):
        self.box_evaluations = 0
        self.rows_produced = 0
        self.join_probes = 0
        self.correlated_evaluations = 0
        #: Column batches materialised (one per pipeline step per box).
        self.batches = 0
        #: Total rows across those batches (mean batch width = ratio).
        self.batch_rows = 0
        #: Hash-probe keys looked up in batch joins.
        self.batch_probes = 0
        #: Rows returned by those probes (fan-out = matches / probes).
        self.batch_probe_matches = 0

    def as_dict(self):
        out = {
            "box_evaluations": self.box_evaluations,
            "rows_produced": self.rows_produced,
            "join_probes": self.join_probes,
            "correlated_evaluations": self.correlated_evaluations,
        }
        if self.batches:
            out["batches"] = self.batches
            out["batch_rows"] = self.batch_rows
            out["rows_per_batch"] = round(self.batch_rows / self.batches, 2)
            out["batch_probes"] = self.batch_probes
            if self.batch_probes:
                out["probe_fanout"] = round(
                    self.batch_probe_matches / self.batch_probes, 2
                )
        return out


class Evaluator:
    """Evaluates a :class:`~repro.qgm.model.QueryGraph` against a database."""

    def __init__(
        self, graph, database, join_orders=None, memoize_correlated=True,
        governor=None, fault_plan=None,
    ):
        self.graph = graph
        self.database = database
        self.join_orders = join_orders or {}
        self.memoize_correlated = memoize_correlated
        # Resilience hooks: the governor meters rows/correlated work/wall
        # clock, the fault plan injects test failures (both optional).
        self.governor = governor
        self.fault_plan = fault_plan
        self.stats = EvaluatorStats()
        self._probe_budget = CHECKPOINT_INTERVAL
        self._materialized = {}
        self._correlated_memo = {}
        self._external_cache = {}
        self._subtree_cache = {}
        self._index_cache = {}
        self._compiled = {}
        self._compiled_predicates = {}
        components, component_of = reduced_dependency_graph(graph)
        self._component_of = component_of
        self._components = components

    # -- public --------------------------------------------------------------

    def run(self):
        """Evaluate the whole graph and return a :class:`Result`."""
        top = self.graph.top_box
        rows = self.rows_for(top, {})
        rows = _apply_order_limit(rows, self.graph.order_by, self.graph.limit)
        return Result(columns=top.column_names, rows=rows)

    # -- compiled expressions ----------------------------------------------------

    def _fn(self, expr):
        """The compiled value closure for ``expr`` (cached)."""
        fn = self._compiled.get(id(expr))
        if fn is None:
            fn = compile_expr(expr)
            self._compiled[id(expr)] = fn
        return fn

    def _pred(self, expr):
        """The compiled TRUE-only predicate closure for ``expr`` (cached)."""
        fn = self._compiled_predicates.get(id(expr))
        if fn is None:
            fn = compile_predicate(expr)
            self._compiled_predicates[id(expr)] = fn
        return fn

    # -- box materialisation ----------------------------------------------------

    def rows_for(self, box, env):
        """Rows of ``box`` under outer bindings ``env``."""
        externals = self._externals(box)
        if externals:
            return self._rows_correlated(box, env, externals)
        cached = self._materialized.get(id(box))
        if cached is not None:
            return cached
        component = self._components[self._component_of[id(box)]]
        if len(component) > 1 or _self_recursive(box):
            from repro.engine.recursion import run_fixpoint

            run_fixpoint(self, component)
            return self._materialized[id(box)]
        rows = self.evaluate_box(box, {})
        rows = self._finalize(box, rows)
        self._materialized[id(box)] = rows
        return rows

    def _rows_correlated(self, box, env, externals):
        bindings = []
        for quantifier in externals:
            row = env.get(quantifier)
            if row is None:
                raise ExecutionError(
                    "correlated box %r evaluated without a binding for %r"
                    % (box.name, quantifier.name)
                )
            bindings.append((id(quantifier), row))
        self.stats.correlated_evaluations += 1
        if self.governor is not None:
            self.governor.charge_correlated(
                "correlated evaluation of box %r" % box.name
            )
        if self.memoize_correlated:
            key = (id(box), tuple(bindings))
            cached = self._correlated_memo.get(key)
            if cached is not None:
                return cached
        rows = self.evaluate_box(box, env)
        rows = self._finalize(box, rows)
        if self.memoize_correlated:
            self._correlated_memo[key] = rows
        return rows

    def _checkpoint(self, box):
        """Cooperative cancellation/deadline checkpoint, amortized over
        :data:`CHECKPOINT_INTERVAL` join probes."""
        if self.governor is None:
            return
        self._probe_budget -= 1
        if self._probe_budget <= 0:
            self._probe_budget = CHECKPOINT_INTERVAL
            self.governor.checkpoint("join processing in box %r" % box.name)

    def _finalize(self, box, rows):
        self.stats.box_evaluations += 1
        self.stats.rows_produced += len(rows)
        if self.fault_plan is not None:
            self.fault_plan.on_box_evaluation(box.name)
        if self.governor is not None:
            self.governor.charge_rows(len(rows), "evaluation of box %r" % box.name)
        if box.distinct == DistinctMode.ENFORCE:
            rows = _dedupe(rows)
        return rows

    # -- externals (correlation detection) -----------------------------------------

    def _subtree(self, box):
        cached = self._subtree_cache.get(id(box))
        if cached is not None:
            return cached
        seen = {}
        stack = [box]
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen[id(current)] = current
            for quantifier in current.quantifiers:
                stack.append(quantifier.input_box)
        self._subtree_cache[id(box)] = seen
        return seen

    def _externals(self, box):
        """Quantifiers referenced inside ``box``'s subtree but owned outside
        it (the correlation edges crossing the subtree boundary)."""
        cached = self._external_cache.get(id(box))
        if cached is not None:
            return cached
        subtree = self._subtree(box)
        externals = []
        seen = set()
        for member in subtree.values():
            for expression in member.all_expressions():
                for ref in qe.column_refs(expression):
                    owner = ref.quantifier.parent_box
                    if owner is not None and id(owner) not in subtree:
                        if id(ref.quantifier) not in seen:
                            seen.add(id(ref.quantifier))
                            externals.append(ref.quantifier)
        self._external_cache[id(box)] = externals
        return externals

    # -- box evaluation ---------------------------------------------------------------

    def evaluate_box(self, box, env):
        if box.kind == BoxKind.BASE:
            return self.database.table(box.table_name).rows
        if box.kind == BoxKind.SELECT:
            return self._evaluate_select(box, env)
        if box.kind == BoxKind.GROUPBY:
            return self._evaluate_groupby(box, env)
        if box.kind == BoxKind.UNION:
            rows = []
            for quantifier in box.quantifiers:
                rows.extend(self.rows_for(quantifier.input_box, env))
            return rows
        if box.kind in (BoxKind.INTERSECT, BoxKind.EXCEPT):
            return self._evaluate_intersect_except(box, env)
        if box.kind == BoxKind.OUTERJOIN:
            return self._evaluate_outerjoin(box, env)
        evaluate_custom = box.properties.get("evaluate")
        if evaluate_custom is not None:
            return evaluate_custom(self, box, env)
        raise ExecutionError("cannot evaluate box kind %r" % box.kind)

    # -- select boxes ------------------------------------------------------------------

    def _join_order(self, box):
        ordered_names = self.join_orders.get(box.box_id)
        foreach = box.foreach_quantifiers()
        if not ordered_names:
            return foreach
        by_name = {q.name: q for q in foreach}
        ordered = [by_name[name] for name in ordered_names if name in by_name]
        remaining = [q for q in foreach if q.name not in set(ordered_names)]
        return ordered + remaining

    def _evaluate_select(self, box, env):
        local = set(box.quantifiers)
        predicates = list(box.predicates)
        scalar_quantifiers = [
            q for q in box.quantifiers if q.qtype == QuantifierType.SCALAR
        ]
        filter_quantifiers = [
            q
            for q in box.quantifiers
            if q.qtype in (QuantifierType.EXISTENTIAL, QuantifierType.ANTI)
        ]

        def quantifiers_of(expression):
            return {
                ref.quantifier
                for ref in qe.column_refs(expression)
                if ref.quantifier in local
            }

        deferred = set()  # predicates involving E/A/S quantifiers
        join_predicates = []
        non_foreach = set(scalar_quantifiers) | set(filter_quantifiers)
        for predicate in predicates:
            if quantifiers_of(predicate) & non_foreach:
                deferred.add(id(predicate))
            else:
                join_predicates.append(predicate)

        envs = [dict(env)]
        bound = set()
        applied = set()
        for quantifier in self._join_order(box):
            envs = self._attach_quantifier(
                box, quantifier, envs, bound, join_predicates, applied
            )
            bound.add(quantifier)
            if not envs:
                break

        # Any join predicate not yet applied (e.g. referencing no local
        # quantifier at all — pure correlation filters) applies now.
        for predicate in join_predicates:
            if id(predicate) not in applied:
                envs = [e for e in envs if predicate_holds(predicate, e)]
                applied.add(id(predicate))

        # Bind scalar subqueries. A decorrelated subquery holds one row per
        # binding; its selector predicates (the correlation equalities EMST
        # lifted) pick the current outer row's match — no match binds NULLs
        # and the row survives, exactly the original correlated semantics.
        for quantifier in scalar_quantifiers:
            new_envs = []
            for current in envs:
                row = self._scalar_row(
                    quantifier, current, quantifier.selector_predicates
                )
                extended = dict(current)
                extended[quantifier] = row
                new_envs.append(extended)
            envs = new_envs
        for predicate in predicates:
            if id(predicate) in deferred and not (
                quantifiers_of(predicate) & set(filter_quantifiers)
            ):
                envs = [e for e in envs if predicate_holds(predicate, e)]

        # Existential / anti filters.
        for quantifier in filter_quantifiers:
            attached = [
                p
                for p in predicates
                if id(p) in deferred and quantifier in quantifiers_of(p)
            ]
            envs = [
                current
                for current in envs
                if self._passes_filter_quantifier(quantifier, attached, current)
            ]

        projection = [self._fn(column.expr) for column in box.columns]
        rows = []
        for current in envs:
            rows.append(tuple(fn(current) for fn in projection))
        return rows

    def _attach_quantifier(self, box, quantifier, envs, bound, join_predicates, applied):
        """Join one foreach quantifier into the current environments."""
        child = quantifier.input_box
        local = set(box.quantifiers)

        def refs_ok(expression, extra):
            for ref in qe.column_refs(expression):
                owner = ref.quantifier
                if owner in local and owner not in extra and owner not in bound:
                    return False
            return True

        # Applicable predicates once this quantifier is bound.
        applicable = [
            p
            for p in join_predicates
            if id(p) not in applied and refs_ok(p, {quantifier})
        ]

        # Split equality predicates usable for hashing: q-side references
        # only this quantifier, other side only bound/external quantifiers.
        hash_keys = []
        residual = []
        for predicate in applicable:
            pair = _hashable_equality(predicate, quantifier, local, bound)
            if pair is not None:
                hash_keys.append(pair)
            else:
                residual.append(predicate)

        child_correlated = bool(self._externals(child))
        use_index = hash_keys and not child_correlated

        new_envs = []
        if use_index:
            index = self._hash_index(child, quantifier, tuple(k[0] for k in hash_keys))
            probes = [self._fn(k[1]) for k in hash_keys]
            residual_fns = [self._pred(p) for p in residual]
            for current in envs:
                probe = tuple(fn(current) for fn in probes)
                if any(v is None for v in probe):
                    continue  # NULL never equals anything
                for row in index.get(probe, ()):
                    self.stats.join_probes += 1
                    self._checkpoint(box)
                    extended = dict(current)
                    extended[quantifier] = row
                    if all(fn(extended) for fn in residual_fns):
                        new_envs.append(extended)
        else:
            applicable_fns = [self._pred(p) for p in applicable]
            for current in envs:
                child_rows = self.rows_for(child, current)
                for row in child_rows:
                    self.stats.join_probes += 1
                    self._checkpoint(box)
                    extended = dict(current)
                    extended[quantifier] = row
                    if all(fn(extended) for fn in applicable_fns):
                        new_envs.append(extended)
        for predicate in applicable:
            applied.add(id(predicate))
        return new_envs

    def _hash_index(self, child, quantifier, key_exprs):
        """Index the child's rows by the values of ``key_exprs`` (expressions
        over ``quantifier`` only).

        For a base table indexed on plain columns, the table's persistent
        hash index is used (warm across queries — the access path a real
        system's indexes provide); derived boxes get a transient index per
        evaluation."""
        if child.kind == BoxKind.BASE and all(
            isinstance(k, qe.QColRef) for k in key_exprs
        ):
            table = self.database.table(child.table_name)
            return table.index_on(tuple(k.column for k in key_exprs))
        names = tuple(str(k) for k in key_exprs)
        cache_key = (id(child), names)
        index = self._index_cache.get(cache_key)
        if index is not None:
            return index
        index = {}
        key_fns = [self._fn(k) for k in key_exprs]
        for row in self.rows_for(child, {}):
            env = {quantifier: row}
            key = tuple(fn(env) for fn in key_fns)
            if any(v is None for v in key):
                continue
            index.setdefault(key, []).append(row)
        self._index_cache[cache_key] = index
        return index

    def _scalar_row(self, quantifier, env, selectors=()):
        child = quantifier.input_box
        null_row = tuple([None] * len(child.columns))

        # Fast path for decorrelated subqueries: equality selectors over
        # plain columns probe a hash index instead of scanning all bindings.
        if quantifier.decorrelated and selectors and not self._externals(child):
            keyed = []
            for predicate in selectors:
                pair = _hashable_equality(predicate, quantifier, {quantifier}, set())
                if pair is None:
                    keyed = None
                    break
                keyed.append(pair)
            if keyed:
                index = self._hash_index(
                    child, quantifier, tuple(k[0] for k in keyed)
                )
                probe = tuple(evaluate(k[1], env) for k in keyed)
                if any(v is None for v in probe):
                    return null_row
                matches = index.get(probe, [])
                if len(matches) > 1:
                    raise ExecutionError(
                        "scalar subquery %r returned %d rows for one binding"
                        % (quantifier.name, len(matches))
                    )
                return matches[0] if matches else null_row

        rows = self.rows_for(child, env)
        if not quantifier.decorrelated and len(rows) > 1:
            raise ExecutionError(
                "scalar subquery %r returned %d rows" % (quantifier.name, len(rows))
            )
        matches = []
        for row in rows:
            extended = dict(env)
            extended[quantifier] = row
            if all(predicate_holds(p, extended) for p in selectors):
                matches.append(row)
                if len(matches) > 1:
                    raise ExecutionError(
                        "scalar subquery %r returned %d rows for one binding"
                        % (quantifier.name, len(matches))
                    )
        if matches:
            return matches[0]
        return null_row

    def _passes_filter_quantifier(self, quantifier, predicates, env):
        """Semi-join (E) / anti-join (A) test for one environment."""
        rows = self.rows_for(quantifier.input_box, env)
        if quantifier.qtype == QuantifierType.EXISTENTIAL:
            for row in rows:
                extended = dict(env)
                extended[quantifier] = row
                if all(predicate_holds(p, extended) for p in predicates):
                    return True
            return False
        # ANTI
        saw_unknown = False
        for row in rows:
            extended = dict(env)
            extended[quantifier] = row
            values = [evaluate(p, extended) for p in predicates]
            if all(v is True for v in values):
                return False
            if quantifier.null_aware and all(v is not False for v in values):
                saw_unknown = True
        if quantifier.null_aware and saw_unknown:
            return False
        return True

    # -- groupby boxes -----------------------------------------------------------------

    def _evaluate_groupby(self, box, env):
        quantifier = box.quantifiers[0]
        input_rows = self.rows_for(quantifier.input_box, env)

        aggregate_columns = [
            (index, column.expr)
            for index, column in enumerate(box.columns)
            if isinstance(column.expr, qe.QAggregate)
        ]

        key_fns = [self._fn(k) for k in box.group_keys]
        arg_fns = [
            None if agg.arg is None else self._fn(agg.arg)
            for _, agg in aggregate_columns
        ]
        groups = {}
        order = []
        for row in input_rows:
            self._checkpoint(box)
            row_env = dict(env)
            row_env[quantifier] = row
            key = tuple(fn(row_env) for fn in key_fns)
            state = groups.get(key)
            if state is None:
                accumulators = [
                    make_accumulator(
                        agg.func, star=agg.arg is None, distinct=agg.distinct
                    )
                    for _, agg in aggregate_columns
                ]
                state = (accumulators, row_env)
                groups[key] = state
                order.append(key)
            accumulators, _ = state
            for accumulator, arg_fn in zip(accumulators, arg_fns):
                accumulator.add(None if arg_fn is None else arg_fn(row_env))

        if not groups and not box.group_keys:
            # Scalar aggregate over an empty input: one row.
            accumulators = [
                make_accumulator(agg.func, star=agg.arg is None, distinct=agg.distinct)
                for _, agg in aggregate_columns
            ]
            row = []
            agg_iter = iter(accumulators)
            for column in box.columns:
                if isinstance(column.expr, qe.QAggregate):
                    row.append(next(agg_iter).result())
                else:
                    row.append(None)
            return [tuple(row)]

        rows = []
        for key in order:
            accumulators, representative_env = groups[key]
            agg_results = {
                index: accumulator.result()
                for accumulator, (index, _) in zip(accumulators, aggregate_columns)
            }
            row = []
            for index, column in enumerate(box.columns):
                if index in agg_results:
                    row.append(agg_results[index])
                else:
                    row.append(evaluate(column.expr, representative_env))
            rows.append(tuple(row))
        return rows

    # -- outer joins ---------------------------------------------------------------------

    def _evaluate_outerjoin(self, box, env):
        """LEFT OUTER JOIN: every preserved-side row survives, NULL-padded
        when no right row satisfies the ON condition."""
        left_q, right_q = box.quantifiers
        left_rows = self.rows_for(left_q.input_box, env)
        null_row = tuple([None] * len(right_q.input_box.columns))

        # Hash the right side when an ON equality allows it.
        hash_keys = []
        residual = []
        for predicate in box.predicates:
            pair = _hashable_equality(
                predicate, right_q, set(box.quantifiers), {left_q}
            )
            if pair is not None:
                hash_keys.append(pair)
            else:
                residual.append(predicate)
        use_index = bool(hash_keys)
        index = None
        if use_index:
            index = self._hash_index(
                right_q.input_box, right_q, tuple(k[0] for k in hash_keys)
            )
        else:
            right_rows = self.rows_for(right_q.input_box, env)

        rows = []
        for left_row in left_rows:
            base_env = dict(env)
            base_env[left_q] = left_row
            matched = False
            if use_index:
                probe = tuple(evaluate(k[1], base_env) for k in hash_keys)
                candidates = (
                    index.get(probe, ()) if all(v is not None for v in probe) else ()
                )
            else:
                candidates = right_rows
            for right_row in candidates:
                self.stats.join_probes += 1
                self._checkpoint(box)
                extended = dict(base_env)
                extended[right_q] = right_row
                if all(predicate_holds(p, extended) for p in (residual if use_index else box.predicates)):
                    matched = True
                    rows.append(
                        tuple(evaluate(c.expr, extended) for c in box.columns)
                    )
            if not matched:
                extended = dict(base_env)
                extended[right_q] = null_row
                rows.append(tuple(evaluate(c.expr, extended) for c in box.columns))
        return rows

    # -- set operations ------------------------------------------------------------------

    def _evaluate_intersect_except(self, box, env):
        left = self.rows_for(box.quantifiers[0].input_box, env)
        right = self.rows_for(box.quantifiers[1].input_box, env)
        right_counts = {}
        for row in right:
            right_counts[row] = right_counts.get(row, 0) + 1
        rows = []
        if box.kind == BoxKind.INTERSECT:
            if box.distinct == DistinctMode.ENFORCE:
                emitted = set()
                for row in left:
                    if row in right_counts and row not in emitted:
                        emitted.add(row)
                        rows.append(row)
            else:  # INTERSECT ALL: min multiplicities
                remaining = dict(right_counts)
                for row in left:
                    if remaining.get(row, 0) > 0:
                        remaining[row] -= 1
                        rows.append(row)
        else:  # EXCEPT
            if box.distinct == DistinctMode.ENFORCE:
                emitted = set()
                for row in left:
                    if row not in right_counts and row not in emitted:
                        emitted.add(row)
                        rows.append(row)
            else:  # EXCEPT ALL: subtract multiplicities
                remaining = dict(right_counts)
                for row in left:
                    if remaining.get(row, 0) > 0:
                        remaining[row] -= 1
                    else:
                        rows.append(row)
        return rows


def _hashable_equality(predicate, quantifier, local, bound):
    """If ``predicate`` is an equality usable to hash-join ``quantifier``,
    return (key_expr_over_quantifier, probe_expr_over_bound); else None."""
    if not (isinstance(predicate, qe.QBinary) and predicate.op == "="):
        return None
    for side, other in (
        (predicate.left, predicate.right),
        (predicate.right, predicate.left),
    ):
        side_local = {
            r.quantifier for r in qe.column_refs(side) if r.quantifier in local
        }
        other_local = {
            r.quantifier for r in qe.column_refs(other) if r.quantifier in local
        }
        if side_local == {quantifier} and quantifier not in other_local:
            if other_local <= bound:
                # The key side must reference nothing but the quantifier
                # itself (no correlation mixed in) to be indexable.
                if all(
                    r.quantifier is quantifier for r in qe.column_refs(side)
                ):
                    return (side, other)
    return None


def _self_recursive(box):
    return any(q.input_box is box for q in box.quantifiers)


def _dedupe(rows):
    seen = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _sort_key_with_nulls(row, order_by):
    key = []
    for ordinal, ascending in order_by:
        value = row[ordinal]
        # NULLs sort last regardless of direction.
        if ascending:
            key.append((value is None, value))
        else:
            key.append((value is None, _Reversed(value)))
    return tuple(key)


class _Reversed:
    """Inverts comparison order for DESC keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        if self.value is None or other.value is None:
            return False
        return other.value < self.value

    def __eq__(self, other):
        return self.value == other.value


def _apply_order_limit(rows, order_by, limit):
    if order_by:
        rows = sorted(rows, key=lambda row: _sort_key_with_nulls(row, order_by))
    if limit is not None:
        rows = rows[:limit]
    return list(rows)


def evaluate_graph(graph, database, join_orders=None, memoize_correlated=True):
    """Convenience wrapper: build an Evaluator and run it."""
    evaluator = Evaluator(
        graph,
        database,
        join_orders=join_orders,
        memoize_correlated=memoize_correlated,
    )
    return evaluator.run()
