"""Execution engine: in-memory columnar storage and QGM evaluation.

Three evaluation strategies mirror the paper's Table 1 columns:

* **bottom-up** (:class:`Evaluator`) — materialise every box once, in
  stratum order, with set-oriented joins; this is how the *Original* and
  *EMST* plans run,
* **correlated** (:mod:`repro.engine.correlated`) — tuple-at-a-time
  re-evaluation of derived-table references with the outer binding pushed
  down, DB2-style; this is the *Correlated* column,
* recursive components run by (semi-)naive fixpoint
  (:mod:`repro.engine.recursion`).

The bottom-up strategies come in two executors: the classic
tuple-at-a-time :class:`Evaluator` and the columnar
:class:`BatchEvaluator` (:mod:`repro.engine.columnar`), which evaluates
boxes over column batches with vectorized predicates and batch
hash joins. The tuple engine doubles as the differential-testing oracle
for the batch engine.
"""

from repro.engine.storage import Database, Table
from repro.engine.evaluator import Evaluator, evaluate_graph
from repro.engine.correlated import CorrelatedEvaluator
from repro.engine.columnar import BatchEvaluator

__all__ = [
    "Database",
    "Table",
    "Evaluator",
    "BatchEvaluator",
    "evaluate_graph",
    "CorrelatedEvaluator",
]
