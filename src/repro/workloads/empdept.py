"""The employee/department schema of the paper's running example,
with a deterministic generator.

Tables:

* ``department(deptno, deptname, mgrno, division, budget)`` — primary key
  ``deptno``; exactly one department is named ``'Planning'``; departments
  are spread over ``n_divisions`` divisions.
* ``employee(empno, empname, workdept, salary, job)`` — primary key
  ``empno``; each department has one manager (its ``mgrno``).
"""

from __future__ import annotations

import random

from repro.catalog import ColumnDef, ForeignKey
from repro.engine import Database

JOBS = ("CLERK", "ANALYST", "SALES", "ENGINEER", "MANAGER")


def build_empdept_database(
    n_departments=100,
    employees_per_department=40,
    n_divisions=10,
    seed=42,
    database=None,
):
    """Build (or extend) a Database with the employee/department schema."""
    rng = random.Random(seed)
    db = database or Database()

    departments = []
    for index in range(n_departments):
        deptno = "D%04d" % index
        if index == 0:
            deptname = "Planning"
        else:
            deptname = "Dept%04d" % index
        division = "DIV%02d" % (index % n_divisions)
        budget = rng.randint(100, 5000) * 1000
        # mgrno filled in below once employees exist.
        departments.append([deptno, deptname, None, division, budget])

    employees = []
    empno = 1
    for index in range(n_departments):
        deptno = "D%04d" % index
        for position in range(employees_per_department):
            salary = rng.randint(30, 180) * 1000
            job = JOBS[rng.randrange(len(JOBS))] if position else "MANAGER"
            employees.append(
                (empno, "Emp%06d" % empno, deptno, salary, job)
            )
            if position == 0:
                departments[index][2] = empno
            empno += 1

    db.create_table(
        "department",
        [
            ColumnDef("deptno", "STR", not_null=True),
            ColumnDef("deptname", "STR", not_null=True),
            # Every department has a manager (the generator fills mgrno in
            # before the rows are stored), so the column is NOT NULL and
            # its UNIQUE key yields a usable functional dependency.
            ColumnDef("mgrno", "INT", not_null=True),
            ColumnDef("division", "STR", not_null=True),
            ColumnDef("budget", "INT", not_null=True),
        ],
        primary_key=["deptno"],
        unique_keys=[("mgrno",)],
        rows=[tuple(row) for row in departments],
    )
    db.create_table(
        "employee",
        [
            ColumnDef("empno", "INT", not_null=True),
            ColumnDef("empname", "STR", not_null=True),
            ColumnDef("workdept", "STR", not_null=True),
            ColumnDef("salary", "INT", not_null=True),
            ColumnDef("job", "STR", not_null=True),
        ],
        primary_key=["empno"],
        foreign_keys=[
            ForeignKey(("workdept",), "department", ("deptno",)),
        ],
        rows=employees,
    )
    return db


#: The views of the paper's Example 1.1 (D1/D2), usable on the generated
#: schema via Connection.run_script.
PAPER_VIEWS_SQL = """
CREATE VIEW mgrSal (empno, empname, workdept, salary) AS
  SELECT e.empno, e.empname, e.workdept, e.salary
  FROM employee e, department d
  WHERE e.empno = d.mgrno;
CREATE VIEW avgMgrSal (workdept, avgsalary) AS
  SELECT workdept, AVG(salary) FROM mgrSal GROUP BY workdept;
"""

#: The paper's query D0.
PAPER_QUERY_SQL = (
    "SELECT d.deptname, s.workdept, s.avgsalary "
    "FROM department d, avgMgrSal s "
    "WHERE d.deptno = s.workdept AND d.deptname = 'Planning'"
)
