"""The eight Table-1 experiments (A–H).

[MFPR90a] never published its benchmark queries, only the normalised
elapsed times (Original = 100). Each experiment below recreates the
*regime* its row exhibits; the docstring of each builder states the regime
and why the strategies behave as the row shows. The harness verifies that
all three strategies return identical rows before timing anything, prints
the normalised table, and checks the row's *shape* (who wins, who loses,
where correlated execution crosses above the original).

Paper's Table 1 (elapsed time, Original = 100):

    ===========  =========  ==========  ======
    Experiment   Original   Correlated  EMST
    ===========  =========  ==========  ======
    A            100.00     0.40        0.47
    B            100.00     2.12        0.28
    C            100.00     513.27      50.24
    D            100.00     5136.49     109.00
    E            100.00     52.56       7.62
    F            100.00     0.54        0.84
    G            100.00     2.41        0.49
    H            100.00     19.91       4.46
    ===========  =========  ==========  ======
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.api import Connection
from repro.workloads.empdept import (
    PAPER_QUERY_SQL,
    PAPER_VIEWS_SQL,
    build_empdept_database,
)
from repro.workloads.decision_support import build_decision_support_database

PAPER_TABLE1 = {
    "A": {"original": 100.00, "correlated": 0.40, "emst": 0.47},
    "B": {"original": 100.00, "correlated": 2.12, "emst": 0.28},
    "C": {"original": 100.00, "correlated": 513.27, "emst": 50.24},
    "D": {"original": 100.00, "correlated": 5136.49, "emst": 109.00},
    "E": {"original": 100.00, "correlated": 52.56, "emst": 7.62},
    "F": {"original": 100.00, "correlated": 0.54, "emst": 0.84},
    "G": {"original": 100.00, "correlated": 2.41, "emst": 0.49},
    "H": {"original": 100.00, "correlated": 19.91, "emst": 4.46},
}

STRATEGIES = ("original", "correlated", "emst")


@dataclass
class Experiment:
    """One Table-1 experiment."""

    key: str
    title: str
    regime: str
    build: Callable  # scale -> (Database, views_sql or None, query_sql)
    #: shape checks: list of (description, callable(normalized) -> bool)
    shape_checks: List = field(default_factory=list)

    @property
    def paper_row(self):
        return PAPER_TABLE1[self.key]


@dataclass
class ExperimentRun:
    """Measured outcome of one experiment."""

    key: str
    title: str
    seconds: Dict[str, float] = field(default_factory=dict)
    normalized: Dict[str, float] = field(default_factory=dict)
    rows_agree: bool = False
    row_count: int = 0
    shape_results: List = field(default_factory=list)

    @property
    def shape_ok(self):
        return all(ok for _, ok in self.shape_results)


# ---------------------------------------------------------------------------
# Experiment builders
# ---------------------------------------------------------------------------


def _build_a(scale):
    """A — single binding through an aggregate view.

    The outer (one department, by unique name) restricts a per-department
    salary-statistics view to a single group. Correlated execution
    evaluates the view once, through the employee.workdept index, and
    narrowly beats EMST, which does the same work plus the magic plumbing.
    The original query aggregates every employee.
    """
    db = build_empdept_database(
        n_departments=int(400 * scale) or 2,
        employees_per_department=60,
        seed=101,
    )
    views = (
        "CREATE VIEW deptStats (workdept, avgsal, headcount) AS "
        "SELECT workdept, AVG(salary), COUNT(*) FROM employee GROUP BY workdept"
    )
    query = (
        "SELECT d.deptno, v.avgsal, v.headcount "
        "FROM department d, deptStats v "
        "WHERE v.workdept = d.deptno AND d.deptname = 'Planning'"
    )
    return db, views, query


def _build_b(scale):
    """B — a small set of bindings through a join-plus-aggregate view.

    One division's departments (a few percent of all) flow into the
    manager-salary view. EMST computes the restricted view once,
    set-oriented; correlated execution re-evaluates the join and the
    grouping once per department.
    """
    db = build_empdept_database(
        n_departments=int(2000 * scale) or 2,
        employees_per_department=8,
        n_divisions=25,
        seed=102,
    )
    query = (
        "SELECT d.deptno, s.avgsalary "
        "FROM department d, avgMgrSal s "
        "WHERE d.deptno = s.workdept AND d.division = 'DIV03'"
    )
    return db, PAPER_VIEWS_SQL, query


def _build_c(scale):
    """C — correlated execution slower than the original query (>100).

    The join column of the view is *computed* (``workdept || ''``), so the
    per-binding parameter cannot be pushed below the grouping by value —
    each of the outer rows re-evaluates the whole view. EMST pushes the
    predicate symbolically and computes the view once, restricted; the
    grouping itself still dominates, so EMST lands near half the original.
    """
    db = build_empdept_database(
        n_departments=int(120 * scale) or 2,
        employees_per_department=50,
        seed=103,
    )
    views = (
        "CREATE VIEW deptPay (dkey, avgsal) AS "
        "SELECT workdept || '', AVG(salary) FROM employee GROUP BY workdept || ''"
    )
    query = (
        "SELECT m.empname, v.avgsal "
        "FROM employee m, department d, deptPay v "
        "WHERE m.empno = d.mgrno AND d.division = 'DIV01' "
        "AND v.dkey = m.workdept || ''"
    )
    return db, views, query


def _build_d(scale):
    """D — the catastrophic correlated case (the paper's 5136).

    The join lands on an *aggregate* output column (headcount), which no
    strategy can push below the grouping: correlated execution recomputes
    the entire aggregate view once per outer department, while EMST
    recognises there is nothing to bind (the adornment stays free) and
    falls back to the original plan — hence EMST ≈ 100 in the paper's row.
    """
    db = build_empdept_database(
        n_departments=int(120 * scale) or 2,
        employees_per_department=50,
        seed=104,
    )
    views = (
        "CREATE VIEW deptStats (workdept, avgsal, headcount) AS "
        "SELECT workdept, AVG(salary), COUNT(*) FROM employee GROUP BY workdept"
    )
    query = (
        "SELECT d.deptno, v.workdept "
        "FROM department d, deptStats v "
        "WHERE v.headcount = d.budget / 25000"
    )
    return db, views, query


def _build_e(scale):
    """E — decision support: one market segment's customers through a
    revenue view. A moderate binding set (~one fifth of the customers):
    correlated execution pays per-binding re-evaluation overhead, EMST one
    restricted pass."""
    db = build_decision_support_database(scale=6.0 * scale, seed=105)
    views = (
        "CREATE VIEW custRev (custkey, rev, norders) AS "
        "SELECT o.custkey, SUM(o.totalprice), COUNT(*) FROM orders o "
        "GROUP BY o.custkey"
    )
    # The outer is the orders of one month: many rows, with *duplicate*
    # custkey bindings — correlated execution re-evaluates the view per
    # outer row, EMST computes it once per distinct binding.
    query = (
        "SELECT o.orderkey, v.rev, v.norders "
        "FROM orders o, custRev v "
        "WHERE v.custkey = o.custkey AND o.omonth = 3 AND o.ostatus = 'O'"
    )
    return db, views, query


def _build_f(scale):
    """F — point lookup through a plain join view (no aggregation).

    A single nation's customers and orders; correlated execution chases the
    indexes tuple-at-a-time and narrowly beats EMST, whose magic/
    supplementary scaffolding buys nothing extra for one binding.
    """
    db = build_decision_support_database(scale=4.0 * scale, seed=106)
    views = (
        "CREATE VIEW custOrders (custkey, cname, nationkey, orderkey, totalprice) AS "
        "SELECT c.custkey, c.cname, c.nationkey, o.orderkey, o.totalprice "
        "FROM customer c, orders o WHERE o.custkey = c.custkey"
    )
    query = (
        "SELECT n.nname, v.cname, v.totalprice "
        "FROM nation n, custOrders v "
        "WHERE v.nationkey = n.nationkey AND n.nname = 'Nation07'"
    )
    return db, views, query


def _build_g(scale):
    """G — the paper's query D (Example 1.1): average manager salary of the
    'Planning' department. The restriction reaches the employee table
    through two views and a grouping; EMST shows the paper's
    orders-of-magnitude win over the original."""
    db = build_empdept_database(
        n_departments=int(12000 * scale) or 2,
        employees_per_department=5,
        seed=107,
    )
    return db, PAPER_VIEWS_SQL, PAPER_QUERY_SQL


def _build_h(scale):
    """H — a two-level view chain: per-customer revenue rolled up to
    per-nation revenue, restricted to one region (a fifth of the nations).
    The magic restriction cascades through both groupings; correlated
    execution re-evaluates the whole inner chain per nation."""
    db = build_decision_support_database(scale=6.0 * scale, seed=108)
    views = (
        "CREATE VIEW custRev (custkey, rev) AS "
        "SELECT o.custkey, SUM(o.totalprice) FROM orders o GROUP BY o.custkey;"
        "CREATE VIEW nationRev (nationkey, totrev, ncust) AS "
        "SELECT c.nationkey, SUM(v.rev), COUNT(*) "
        "FROM customer c, custRev v WHERE v.custkey = c.custkey "
        "GROUP BY c.nationkey"
    )
    # One region's nations flow through a two-level chain. Correlated
    # execution restricts the outer grouping per nation, but inside each
    # evaluation it must re-enter the per-customer revenue view once per
    # customer row; the magic restriction cascades through both levels and
    # computes each once, set-oriented.
    query = (
        "SELECT n.nname, v.totrev, v.ncust "
        "FROM nation n, nationRev v "
        "WHERE v.nationkey = n.nationkey AND n.regionkey = 2"
    )
    return db, views, query


def _check(description, fn):
    return (description, fn)


def _mk_experiment(key, title, regime, build, checks):
    return Experiment(
        key=key, title=title, regime=regime, build=build, shape_checks=checks
    )


EXPERIMENTS = {
    "A": _mk_experiment(
        "A",
        "single binding, aggregate view",
        "correlated narrowly beats EMST; both crush the original",
        _build_a,
        [
            _check("emst << original", lambda n: n["emst"] < 25),
            _check("correlated << original", lambda n: n["correlated"] < 25),
            _check(
                "correlated <= emst (single binding)",
                lambda n: n["correlated"] <= n["emst"] * 1.5,
            ),
        ],
    ),
    "B": _mk_experiment(
        "B",
        "small binding set, join + aggregate view",
        "EMST beats correlated; both beat the original",
        _build_b,
        [
            _check("emst << original", lambda n: n["emst"] < 30),
            _check("correlated < original", lambda n: n["correlated"] < 90),
            _check("emst < correlated", lambda n: n["emst"] < n["correlated"]),
        ],
    ),
    "C": _mk_experiment(
        "C",
        "computed join column blocks value pushdown",
        "correlated exceeds the original; EMST roughly halves it",
        _build_c,
        [
            _check("correlated > original", lambda n: n["correlated"] > 100),
            _check("emst < original", lambda n: n["emst"] < 100),
            _check("emst << correlated", lambda n: n["emst"] * 2 < n["correlated"]),
        ],
    ),
    "D": _mk_experiment(
        "D",
        "binding on an aggregate column",
        "correlated catastrophic; EMST cannot help and stays near 100",
        _build_d,
        [
            _check("correlated >> original", lambda n: n["correlated"] > 300),
            # EMST cannot push a binding through the aggregate, so it stays
            # in the original's neighbourhood (the phase-1/3 merges still
            # help a little at small scales) — never a blow-up, never a win.
            _check("emst near original", lambda n: 30 <= n["emst"] <= 170),
        ],
    ),
    "E": _mk_experiment(
        "E",
        "decision support, moderate binding set",
        "EMST clearly beats correlated; both beat the original",
        _build_e,
        [
            _check("emst < correlated", lambda n: n["emst"] < n["correlated"]),
            _check("correlated < original", lambda n: n["correlated"] < 100),
            _check("emst << original", lambda n: n["emst"] < 50),
        ],
    ),
    "F": _mk_experiment(
        "F",
        "point lookup through a join view",
        "correlated narrowly beats EMST; both crush the original",
        _build_f,
        [
            _check("emst << original", lambda n: n["emst"] < 30),
            _check("correlated << original", lambda n: n["correlated"] < 30),
            _check(
                "correlated within a small factor of emst (single binding)",
                lambda n: n["correlated"] <= n["emst"] * 3.0,
            ),
        ],
    ),
    "G": _mk_experiment(
        "G",
        "the paper's query D",
        "EMST orders of magnitude below the original",
        _build_g,
        [
            _check("emst << original", lambda n: n["emst"] < 10),
            _check("correlated << original", lambda n: n["correlated"] < 10),
        ],
    ),
    "H": _mk_experiment(
        "H",
        "two-level view chain",
        "EMST beats correlated through cascaded magic; both beat original",
        _build_h,
        [
            _check("emst < correlated", lambda n: n["emst"] < n["correlated"]),
            _check("correlated < original", lambda n: n["correlated"] < 100),
            _check("emst << original", lambda n: n["emst"] < 50),
        ],
    ),
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


def canonical_rows(rows):
    """Sort rows and round floats to 10 significant digits, so strategies
    that sum in different orders still compare equal."""

    def canon(value):
        if isinstance(value, float):
            return float("%.10g" % value)
        return value

    out = [tuple(canon(v) for v in row) for row in rows]
    return sorted(out, key=repr)


def run_experiment(experiment, scale=1.0, repeats=3):
    """Run one experiment under all three strategies.

    Performs a warm-up run per strategy first (which also warms the
    persistent indexes and verifies that all strategies return the same
    rows), then times ``repeats`` runs and keeps the minimum.
    """
    db, views_sql, query_sql = experiment.build(scale)
    connection = Connection(db)
    if views_sql:
        connection.run_script(views_sql)

    # Prepare once per strategy (parse + rewrite + plan), as the paper's
    # measurements time the *execution* of already-optimized queries.
    prepared = {
        strategy: connection.prepare_statement(query_sql, strategy=strategy)
        for strategy in STRATEGIES
    }

    reference_rows = None
    outcome_rows = {}
    for strategy in STRATEGIES:
        result, _ = prepared[strategy].execute()  # warm-up + correctness
        outcome_rows[strategy] = canonical_rows(result.rows)
        if reference_rows is None:
            reference_rows = outcome_rows[strategy]
    rows_agree = all(rows == reference_rows for rows in outcome_rows.values())

    seconds = {}
    for strategy in STRATEGIES:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            prepared[strategy].execute()
            best = min(best, time.perf_counter() - started)
        seconds[strategy] = best

    base = seconds["original"] or 1e-9
    normalized = {
        strategy: 100.0 * seconds[strategy] / base for strategy in STRATEGIES
    }
    run = ExperimentRun(
        key=experiment.key,
        title=experiment.title,
        seconds=seconds,
        normalized=normalized,
        rows_agree=rows_agree,
        row_count=len(reference_rows or []),
    )
    run.shape_results = [
        (description, bool(check(normalized)))
        for description, check in experiment.shape_checks
    ]
    return run


def run_all_experiments(scale=1.0, repeats=3, keys=None):
    """Run all (or the selected) experiments; returns {key: ExperimentRun}."""
    selected = keys or sorted(EXPERIMENTS)
    return {
        key: run_experiment(EXPERIMENTS[key], scale=scale, repeats=repeats)
        for key in selected
    }


def format_table1(runs, include_paper=True):
    """Render the measured runs as the paper's Table 1."""
    lines = []
    header = "%-6s %10s %12s %10s" % ("Query", "Original", "Correlated", "EMST")
    if include_paper:
        header += "   |   paper: %10s %8s" % ("Correlated", "EMST")
    lines.append(header)
    lines.append("-" * len(header))
    for key in sorted(runs):
        run = runs[key]
        line = "Exp %-2s %10.2f %12.2f %10.2f" % (
            key,
            run.normalized["original"],
            run.normalized["correlated"],
            run.normalized["emst"],
        )
        if include_paper:
            paper = PAPER_TABLE1[key]
            line += "   |          %10.2f %8.2f" % (
                paper["correlated"],
                paper["emst"],
            )
        if not run.rows_agree:
            line += "   ROWS DISAGREE!"
        if not run.shape_ok:
            failed = [d for d, ok in run.shape_results if not ok]
            line += "   shape: %s" % "; ".join(failed)
        lines.append(line)
    return "\n".join(lines)
