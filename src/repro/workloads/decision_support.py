"""A TPC-D-flavoured decision-support schema with a deterministic
generator (the paper motivates EMST with decision-support/TPCD queries).

Tables (scaled by ``scale``):

* ``customer(custkey, cname, nationkey, mktsegment, acctbal)``
* ``orders(orderkey, custkey, ostatus, totalprice, omonth, clerk)``
* ``lineitem(orderkey, partkey, quantity, extendedprice, discount)``
* ``part(partkey, pname, brand, ptype, size)``
* ``nation(nationkey, nname, regionkey)``
"""

from __future__ import annotations

import random

from repro.catalog import ColumnDef, ForeignKey
from repro.engine import Database

MKT_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
BRANDS = tuple("Brand%02d" % i for i in range(10))
PTYPES = ("COPPER", "BRASS", "STEEL", "TIN", "NICKEL")
STATUSES = ("O", "F", "P")


def build_decision_support_database(scale=1.0, seed=7, database=None):
    """Build the decision-support database at the given scale factor.

    scale=1.0 ≈ 300 customers, 1500 orders, 4500 lineitems, 200 parts.
    """
    rng = random.Random(seed)
    db = database or Database()

    n_nations = 25
    n_customers = max(int(300 * scale), 10)
    n_orders = max(int(1500 * scale), 20)
    n_parts = max(int(200 * scale), 10)
    lines_per_order = 3

    nations = [
        (key, "Nation%02d" % key, key % 5)
        for key in range(n_nations)
    ]
    customers = [
        (
            key,
            "Customer%05d" % key,
            rng.randrange(n_nations),
            MKT_SEGMENTS[rng.randrange(len(MKT_SEGMENTS))],
            round(rng.uniform(-999.0, 9999.0), 2),
        )
        for key in range(n_customers)
    ]
    orders = [
        (
            key,
            rng.randrange(n_customers),
            STATUSES[rng.randrange(len(STATUSES))],
            round(rng.uniform(1000.0, 300000.0), 2),
            rng.randrange(1, 13),
            "Clerk%03d" % rng.randrange(100),
        )
        for key in range(n_orders)
    ]
    parts = [
        (
            key,
            "Part%05d" % key,
            BRANDS[rng.randrange(len(BRANDS))],
            PTYPES[rng.randrange(len(PTYPES))],
            rng.randrange(1, 51),
        )
        for key in range(n_parts)
    ]
    lineitems = []
    for orderkey in range(n_orders):
        for _ in range(lines_per_order):
            lineitems.append(
                (
                    orderkey,
                    rng.randrange(n_parts),
                    rng.randrange(1, 51),
                    round(rng.uniform(100.0, 90000.0), 2),
                    round(rng.choice((0.0, 0.02, 0.04, 0.06, 0.08, 0.10)), 2),
                )
            )

    db.create_table(
        "nation",
        [
            ColumnDef("nationkey", "INT", not_null=True),
            ColumnDef("nname", "STR", not_null=True),
            ColumnDef("regionkey", "INT", not_null=True),
        ],
        primary_key=["nationkey"],
        rows=nations,
    )
    db.create_table(
        "customer",
        [
            ColumnDef("custkey", "INT", not_null=True),
            ColumnDef("cname", "STR", not_null=True),
            ColumnDef("nationkey", "INT", not_null=True),
            ColumnDef("mktsegment", "STR", not_null=True),
            ColumnDef("acctbal", "FLOAT", not_null=True),
        ],
        primary_key=["custkey"],
        foreign_keys=[ForeignKey(("nationkey",), "nation", ("nationkey",))],
        rows=customers,
    )
    db.create_table(
        "orders",
        [
            ColumnDef("orderkey", "INT", not_null=True),
            ColumnDef("custkey", "INT", not_null=True),
            ColumnDef("ostatus", "STR", not_null=True),
            ColumnDef("totalprice", "FLOAT", not_null=True),
            ColumnDef("omonth", "INT", not_null=True),
            ColumnDef("clerk", "STR", not_null=True),
        ],
        primary_key=["orderkey"],
        foreign_keys=[ForeignKey(("custkey",), "customer", ("custkey",))],
        rows=orders,
    )
    db.create_table(
        "part",
        [
            ColumnDef("partkey", "INT", not_null=True),
            ColumnDef("pname", "STR", not_null=True),
            ColumnDef("brand", "STR", not_null=True),
            ColumnDef("ptype", "STR", not_null=True),
            ColumnDef("size", "INT", not_null=True),
        ],
        primary_key=["partkey"],
        rows=parts,
    )
    db.create_table(
        "lineitem",
        [
            ColumnDef("orderkey", "INT", not_null=True),
            ColumnDef("partkey", "INT", not_null=True),
            ColumnDef("quantity", "INT", not_null=True),
            ColumnDef("extendedprice", "FLOAT", not_null=True),
            ColumnDef("discount", "FLOAT", not_null=True),
        ],
        foreign_keys=[
            ForeignKey(("orderkey",), "orders", ("orderkey",)),
            ForeignKey(("partkey",), "part", ("partkey",)),
        ],
        rows=lineitems,
    )
    return db
