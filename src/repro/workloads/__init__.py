"""Benchmark workloads: deterministic synthetic data generators and the
eight Table-1 experiments (A–H).

The paper's numbers come from "large benchmark data" on DB2 [MFPR90a]; the
queries were never published. These modules recreate the *regimes* each
Table-1 row exhibits — single-binding lookups where correlated execution
narrowly wins, large-outer re-evaluation blow-ups where it loses to the
original query, and the stable EMST middle ground — on an employee/
department schema (the paper's running example) and a TPC-D-flavoured
decision-support schema (the paper's motivation cites TPCD [TPCD94]).
"""

from repro.workloads.empdept import build_empdept_database
from repro.workloads.decision_support import build_decision_support_database
from repro.workloads.experiments import (
    EXPERIMENTS,
    Experiment,
    ExperimentRun,
    run_experiment,
    run_all_experiments,
    format_table1,
)

__all__ = [
    "build_empdept_database",
    "build_decision_support_database",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentRun",
    "run_experiment",
    "run_all_experiments",
    "format_table1",
]
